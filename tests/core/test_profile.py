"""Parallelism profile summaries and binning."""

import pytest

from repro.core.profile import ParallelismProfile


def make(counts):
    profile = ParallelismProfile()
    for level, count in counts.items():
        profile.add(level, count)
    return profile


class TestScalars:
    def test_empty(self):
        profile = ParallelismProfile()
        assert profile.depth == 0
        assert profile.total_operations == 0
        assert profile.average_parallelism == 0.0
        assert profile.max_width == 0

    def test_totals(self):
        profile = make({0: 4, 1: 2, 2: 1, 3: 1})
        assert profile.total_operations == 8
        assert profile.depth == 4
        assert profile.average_parallelism == 2.0
        assert profile.max_width == 4

    def test_depth_spans_empty_levels(self):
        profile = make({0: 1, 9: 1})
        assert profile.depth == 10
        assert profile.average_parallelism == 0.2

    def test_add_accumulates(self):
        profile = ParallelismProfile()
        profile.add(3)
        profile.add(3, 2)
        assert profile.counts == {3: 3}


class TestBurstiness:
    def test_flat_profile_not_bursty(self):
        profile = make({i: 5 for i in range(10)})
        assert profile.burstiness() == pytest.approx(0.0)

    def test_spike_is_bursty(self):
        profile = make({0: 100})
        profile.add(50, 0)  # force depth without mass
        profile.counts[50] = 0
        flat = make({i: 2 for i in range(51)})
        assert make({0: 100, 50: 2}).burstiness() > flat.burstiness()

    def test_empty_profile_zero(self):
        assert ParallelismProfile().burstiness() == 0.0


class TestBinning:
    def test_no_binning_when_small(self):
        profile = make({0: 1, 1: 2, 2: 3})
        bins = profile.binned(max_points=10)
        assert len(bins) == 3
        assert [b.operations for b in bins] == [1, 2, 3]
        assert bins[0].average == 1.0

    def test_binning_averages_ranges(self):
        profile = make({i: 1 for i in range(100)})
        bins = profile.binned(max_points=10)
        assert len(bins) == 10
        assert all(b.average == pytest.approx(1.0) for b in bins)

    def test_bin_mass_preserved(self):
        profile = make({i: (i % 7) + 1 for i in range(1000)})
        bins = profile.binned(max_points=37)
        assert sum(b.operations for b in bins) == profile.total_operations

    def test_bins_cover_depth_without_overlap(self):
        profile = make({i: 1 for i in range(95)})
        bins = profile.binned(max_points=10)
        assert bins[0].start == 0
        assert bins[-1].end == 95
        for left, right in zip(bins, bins[1:]):
            assert left.end == right.start

    def test_series_shapes_match(self):
        profile = make({i: i + 1 for i in range(50)})
        xs, ys = profile.series(max_points=25)
        assert len(xs) == len(ys) == 25

    def test_empty_binned(self):
        assert ParallelismProfile().binned() == []


class TestRendering:
    def test_ascii_plot_nonempty(self):
        profile = make({i: (i * 13) % 11 + 1 for i in range(200)})
        art = profile.ascii_plot(width=40, height=8)
        assert "#" in art
        assert "level in DDG" in art

    def test_ascii_plot_empty(self):
        assert "empty" in ParallelismProfile().ascii_plot()


class TestMerge:
    def test_merged_into(self):
        a = make({0: 1, 2: 3})
        b = make({0: 2})
        a.merged_into(b)
        assert b.counts == {0: 3, 2: 3}
