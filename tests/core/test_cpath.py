"""Critical-path composition summaries."""

from repro.core.config import AnalysisConfig
from repro.core.cpath import summarize_critical_path
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.isa.opclasses import OpClass
from repro.trace.synthetic import TraceBuilder, serial_chain


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestSummary:
    def test_serial_chain_fully_on_path(self):
        trace = serial_chain(12)
        ddg = build_ddg(trace, unit())
        summary = summarize_critical_path(ddg, trace)
        assert summary.length_nodes == 12
        assert summary.length_levels == 12
        assert summary.by_class == {"IALU": 12}
        assert summary.by_edge_kind == {"source": 1, "raw": 11}

    def test_war_edges_reported(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.ialu(1)
        builder.ialu(3, 1)
        trace = builder.build()
        ddg = build_ddg(trace, unit(rename_registers=False))
        summary = summarize_critical_path(ddg, trace)
        assert summary.by_edge_kind.get("war", 0) >= 1

    def test_class_mix_on_path(self):
        builder = TraceBuilder()
        builder.op(OpClass.IMUL, (1,), ())
        builder.op(OpClass.FADD, (33,), ())
        builder.op(OpClass.IDIV, (2,), (1,))
        trace = builder.build()
        ddg = build_ddg(trace, AnalysisConfig())
        summary = summarize_critical_path(ddg, trace)
        # longest chain: imul(6) -> idiv(12) = 18 levels
        assert summary.length_levels == 18
        assert summary.by_class == {"IMUL": 1, "IDIV": 1}

    def test_hot_statements_ranked(self):
        builder = TraceBuilder()
        for _ in range(5):
            builder.op(OpClass.IALU, (1,), (1,), aux=7)
        builder.op(OpClass.IALU, (2,), (1,), aux=9)
        trace = builder.build()
        ddg = build_ddg(trace, unit())
        summary = summarize_critical_path(ddg, trace, top=2)
        assert summary.hot_statements[0] == (7, "IALU", 5)
        assert summary.hot_statements[1] == (9, "IALU", 1)

    def test_render_mentions_everything(self):
        trace = serial_chain(4)
        summary = summarize_critical_path(build_ddg(trace, unit()), trace)
        text = summary.render()
        assert "critical path: 4 operations" in text
        assert "IALU=4" in text
        assert "raw=3" in text

    def test_empty_trace(self):
        trace = TraceBuilder().build()
        summary = summarize_critical_path(build_ddg(trace, unit()), trace)
        assert summary.length_nodes == 0
        assert summary.by_class == {}
