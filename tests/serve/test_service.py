"""Service-level behaviors that need no socket: the upload byte budget,
all-or-nothing batch submission, and submit-time upload spec validation."""

import pytest

from repro.serve.service import (
    AnalysisService,
    ServeConfig,
    ServeStore,
    SpecError,
    UploadBudgetError,
    job_from_spec,
)
from repro.serve.state import QueueFullError
from repro.trace.buffer import TraceBuffer
from repro.trace.record import make_record


def _trace(seed=0, count=4):
    """A tiny synthetic trace whose content (and so upload id) varies
    with ``seed``."""
    records = [make_record(0, (1 + seed,), (2 + seed + i,)) for i in range(count)]
    return TraceBuffer(records)


class TestUploadBudget:
    def test_lru_eviction_under_budget(self):
        store = ServeStore(upload_budget=100)
        first, _ = store.add_upload(_trace(seed=1), size=40)
        second, _ = store.add_upload(_trace(seed=2), size=40)
        third, _ = store.add_upload(_trace(seed=3), size=40)
        assert store.upload_cap(first) is None  # oldest evicted
        assert store.upload_cap(second) is not None
        assert store.upload_cap(third) is not None
        assert store.upload_bytes <= 100

    def test_touch_refreshes_lru_order(self):
        store = ServeStore(upload_budget=100)
        first, _ = store.add_upload(_trace(seed=1), size=40)
        second, _ = store.add_upload(_trace(seed=2), size=40)
        store.touch_upload(first)
        store.add_upload(_trace(seed=3), size=40)
        assert store.upload_cap(first) is not None  # touched: survived
        assert store.upload_cap(second) is None

    def test_pinned_uploads_are_not_evicted(self):
        store = ServeStore(upload_budget=100)
        first, _ = store.add_upload(_trace(seed=1), size=40)
        store.pinned = lambda name: name == first
        second, _ = store.add_upload(_trace(seed=2), size=40)
        store.add_upload(_trace(seed=3), size=40)
        assert store.upload_cap(first) is not None  # pinned: skipped
        assert store.upload_cap(second) is None  # unpinned LRU went instead

    def test_all_pinned_raises(self):
        store = ServeStore(upload_budget=100)
        store.pinned = lambda name: True
        store.add_upload(_trace(seed=1), size=60)
        with pytest.raises(UploadBudgetError):
            store.add_upload(_trace(seed=2), size=60)

    def test_oversized_upload_rejected_outright(self):
        store = ServeStore(upload_budget=100)
        with pytest.raises(UploadBudgetError):
            store.add_upload(_trace(seed=1), size=101)
        assert store.upload_bytes == 0

    def test_reupload_of_known_content_is_free(self):
        store = ServeStore(upload_budget=100)
        name, cap = store.add_upload(_trace(seed=1), size=60)
        again, cap_again = store.add_upload(_trace(seed=1), size=60)
        assert (name, cap) == (again, cap_again)
        assert store.upload_bytes == 60  # charged once

    def test_no_budget_means_no_eviction(self):
        store = ServeStore()
        for seed in range(5):
            store.add_upload(_trace(seed=seed), size=10**9)
        assert store.upload_bytes == 5 * 10**9


@pytest.fixture()
def service():
    return AnalysisService(ServeConfig(jobs=1, queue_limit=2, metrics=False))


def _spec(window):
    return {"workload": "cc1x", "cap": 1000, "config": {"window_size": window}}


class TestAtomicBatchSubmission:
    def test_overflowing_batch_enqueues_nothing(self, service):
        with pytest.raises(QueueFullError) as excinfo:
            service.submit_many([_spec(8), _spec(16), _spec(32)], client="alpha")
        assert "no jobs" in str(excinfo.value)
        assert service.queue.depth == 0
        assert len(service.registry) == 0
        assert service.stats["submitted"] == 0

    def test_exact_fit_batch_is_accepted(self, service):
        rows = service.submit_many([_spec(8), _spec(16)], client="alpha")
        assert [deduped for _, deduped in rows] == [False, False]
        assert service.queue.depth == 2

    def test_within_batch_duplicates_need_one_slot(self, service):
        service.submit(_spec(8), client="alpha")  # one slot left
        rows = service.submit_many([_spec(16), _spec(16)], client="beta")
        assert [deduped for _, deduped in rows] == [False, True]
        assert rows[0][0] is rows[1][0]
        assert service.queue.depth == 2

    def test_deduped_jobs_need_no_slots(self, service):
        service.submit_many([_spec(8), _spec(16)], client="alpha")  # queue full
        rows = service.submit_many([_spec(8), _spec(16)], client="beta")
        assert all(deduped for _, deduped in rows)

    def test_invalid_spec_fails_batch_before_any_enqueue(self, service):
        with pytest.raises(SpecError):
            service.submit_many([_spec(8), {"cap": 5}], client="alpha")
        assert service.queue.depth == 0
        assert service.stats["submitted"] == 0


class TestUploadSpecValidation:
    def test_cap_defaults_to_upload_cap(self):
        store = ServeStore()
        name, cap = store.add_upload(_trace(count=6), size=100)
        job = job_from_spec({"workload": name}, store)
        assert job.cap == cap == 6

    def test_matching_explicit_cap_is_accepted(self):
        store = ServeStore()
        name, cap = store.add_upload(_trace(count=6), size=100)
        assert job_from_spec({"workload": name, "cap": cap}, store).cap == cap

    def test_mismatched_cap_is_a_spec_error(self):
        store = ServeStore()
        name, cap = store.add_upload(_trace(count=6), size=100)
        with pytest.raises(SpecError, match="registered at cap"):
            job_from_spec({"workload": name, "cap": cap + 1}, store)

    def test_optimize_on_upload_is_a_spec_error(self):
        store = ServeStore()
        name, _ = store.add_upload(_trace(count=6), size=100)
        with pytest.raises(SpecError, match="optimize"):
            job_from_spec({"workload": name, "optimize": True}, store)
