"""Server-side job state: records, registry retention, fair queueing."""

import asyncio

import pytest

from repro.core.config import AnalysisConfig
from repro.engine.jobs import AnalysisJob
from repro.serve.state import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    FairQueue,
    JobRecord,
    JobRegistry,
    QueueFullError,
)


def _job(cap=1000, window=None):
    return AnalysisJob("cc1x", cap, AnalysisConfig(window_size=window))


def _record(cap=1000, window=None, client="alpha"):
    return JobRecord(_job(cap, window), client)


class TestJobRecord:
    def test_id_is_content_addressed(self):
        assert _record().id == _job().digest()
        assert _record(cap=2000).id != _record(cap=1000).id

    def test_event_sequence(self):
        record = _record()
        record.post("queued")
        record.mark_running(worker=3)
        record.finish(DONE, "ok", seconds=1.5)
        kinds = [event["event"] for event in record.events]
        assert kinds == ["queued", "started", "done"]
        assert [event["seq"] for event in record.events] == [0, 1, 2]
        assert record.state == DONE
        assert record.status == "ok"
        assert record.events[1]["worker"] == 3

    def test_finish_is_idempotent(self):
        record = _record()
        record.finish(DONE, "ok")
        record.finish(FAILED, "failed", error="late")
        assert record.state == DONE
        assert len(record.events) == 1

    def test_retry_counts_attempts(self):
        record = _record()
        record.mark_retry("worker crashed")
        record.mark_retry("worker crashed again")
        assert record.attempts == 2
        assert record.events[-1]["error"] == "worker crashed again"

    def test_cancel(self):
        record = _record()
        record.cancel("server draining")
        assert record.state == CANCELLED
        assert record.error == "server draining"
        assert record.describe()["state"] == CANCELLED

    def test_wait_events_returns_backlog_immediately(self):
        async def scenario():
            record = _record()
            record.post("queued")
            record.mark_running()
            return await record.wait_events(0)

        events = asyncio.run(scenario())
        assert [event["event"] for event in events] == ["queued", "started"]

    def test_wait_events_blocks_until_posted(self):
        async def scenario():
            record = _record()

            async def later():
                await asyncio.sleep(0.01)
                record.post("queued")

            task = asyncio.get_running_loop().create_task(later())
            events = await asyncio.wait_for(record.wait_events(0), timeout=5)
            await task
            return events

        events = asyncio.run(scenario())
        assert [event["event"] for event in events] == ["queued"]

    def test_wait_events_ends_after_terminal(self):
        async def scenario():
            record = _record()
            record.finish(DONE, "ok")
            first = await record.wait_events(0)
            after = await record.wait_events(first[-1]["seq"] + 1)
            return first, after

        first, after = asyncio.run(scenario())
        assert [event["event"] for event in first] == ["done"]
        assert after == []


class TestJobRegistry:
    def test_add_get_replace(self):
        registry = JobRegistry()
        record = _record()
        registry.add(record)
        assert registry.get(record.id) is record
        record.finish(FAILED, "failed")
        fresh = _record()
        registry.replace(fresh)
        assert registry.get(record.id) is fresh
        assert len(registry) == 1

    def test_retention_prunes_only_terminal(self):
        registry = JobRegistry(retention=2)
        done = [_record(window=w) for w in (2, 3, 4)]
        for record in done:
            record.finish(DONE, "ok")
            registry.add(record)
        live = _record(window=5)
        registry.add(live)
        assert len(registry) == 2  # two oldest done records dropped
        assert registry.get(live.id) is live
        assert registry.get(done[0].id) is None


class TestFairQueue:
    def test_round_robin_across_clients(self):
        async def scenario():
            queue = FairQueue(limit=16)
            for job in ("a1", "a2", "a3"):
                queue.put("alpha", job)
            queue.put("beta", "b1")
            return await queue.take(4)

        assert asyncio.run(scenario()) == ["a1", "b1", "a2", "a3"]

    def test_take_respects_batch_size(self):
        async def scenario():
            queue = FairQueue(limit=16)
            for job in ("a1", "a2", "a3"):
                queue.put("alpha", job)
            first = await queue.take(2)
            second = await queue.take(2)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == ["a1", "a2"]
        assert second == ["a3"]

    def test_remaining_tracks_free_slots(self):
        queue = FairQueue(limit=2)
        assert queue.remaining == 2
        queue.put("alpha", "job-1")
        assert queue.remaining == 1
        queue.put("beta", "job-2")
        assert queue.remaining == 0
        queue.close()
        assert queue.remaining == 0

    def test_bounded(self):
        async def scenario():
            queue = FairQueue(limit=2)
            queue.put("alpha", "a1")
            queue.put("beta", "b1")
            with pytest.raises(QueueFullError):
                queue.put("alpha", "a2")
            assert queue.depth == 2

        asyncio.run(scenario())

    def test_take_blocks_until_put(self):
        async def scenario():
            queue = FairQueue(limit=4)

            async def later():
                await asyncio.sleep(0.01)
                queue.put("alpha", "a1")

            task = asyncio.get_running_loop().create_task(later())
            items = await asyncio.wait_for(queue.take(1), timeout=5)
            await task
            return items

        assert asyncio.run(scenario()) == ["a1"]

    def test_close_unblocks_and_refuses(self):
        async def scenario():
            queue = FairQueue(limit=4)
            waiter = asyncio.get_running_loop().create_task(queue.take(1))
            await asyncio.sleep(0)
            queue.close()
            items = await asyncio.wait_for(waiter, timeout=5)
            with pytest.raises(QueueFullError):
                queue.put("alpha", "a1")
            return items

        assert asyncio.run(scenario()) == []

    def test_drain_pending_empties_all_lanes(self):
        async def scenario():
            queue = FairQueue(limit=8)
            queue.put("alpha", "a1")
            queue.put("beta", "b1")
            pending = queue.drain_pending()
            assert queue.depth == 0
            return pending

        assert sorted(asyncio.run(scenario())) == ["a1", "b1"]


class TestStates:
    def test_lifecycle_constants(self):
        assert QUEUED == "queued"
        assert RUNNING == "running"
