"""End-to-end server tests over a real socket.

One module-scoped server carries the read-only and submission tests
(distinct job digests keep them independent); the drain/resume test runs
the real CLI in a subprocess, because graceful SIGTERM handling *is* the
behavior under test.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.engine.api import ExperimentEngine
from repro.serve import ServeClient, ServeClientError, ServeConfig, ServerThread
from repro.trace.io import write_trace
from repro.workloads.suite import load_workload

CAP = 1500
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(repro.__file__), ".."))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    config = ServeConfig(
        port=0,
        jobs=1,
        journal_dir=str(tmp / "journal"),
        result_cache=str(tmp / "cache"),
        metrics=True,
    )
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServeClient("127.0.0.1", server.port, client_id="tests") as c:
        yield c


def _spec(window=None, **overrides):
    spec = {"workload": "xlispx", "cap": CAP}
    if window is not None:
        spec["config"] = {"window_size": window}
    spec.update(overrides)
    return spec


class TestSubmitPollResult:
    def test_submit_to_result_matches_direct_engine(self, client):
        rows = client.submit(_spec())
        assert len(rows) == 1
        assert rows[0]["deduped"] is False
        record = client.wait(rows[0]["id"])
        assert record["state"] == "done"
        assert record["status"] in ("ok", "cached")
        from repro.engine.serialize import result_to_dict

        expected = result_to_dict(ExperimentEngine().analyze("xlispx", CAP))
        assert record["result"] == expected
        assert record["summary"]["available_parallelism"] == pytest.approx(
            expected["placed_operations"] / expected["critical_path_length"]
        )

    def test_config_grid_fans_out(self, client):
        rows = client.submit(
            {
                "workload": "xlispx",
                "cap": CAP,
                "configs": [{"window_size": 16}, {"window_size": 64}],
            }
        )
        assert len(rows) == 2
        assert rows[0]["id"] != rows[1]["id"]
        records = [client.wait(row["id"]) for row in rows]
        assert all(record["state"] == "done" for record in records)
        ilp = [record["summary"]["available_parallelism"] for record in records]
        assert ilp[0] <= ilp[1]  # a bigger window can only help

    def test_identical_submissions_execute_once(self, server):
        before = server.service.stats["executed"]
        spec = _spec(window=48)
        with ServeClient("127.0.0.1", server.port, client_id="alpha") as alpha:
            with ServeClient("127.0.0.1", server.port, client_id="beta") as beta:
                first = alpha.submit(spec)[0]
                second = beta.submit(spec)[0]
                assert first["id"] == second["id"]
                record = alpha.wait(first["id"])
                third = beta.submit(spec)[0]  # resubmission after completion
        assert record["state"] == "done"
        assert third["deduped"] is True
        assert server.service.stats["executed"] == before + 1
        assert sorted(record["clients"])[:2] == ["alpha", "beta"]


class TestEvents:
    def test_sse_stream_order_and_resume(self, client):
        row = client.submit(_spec(window=32))[0]
        events = list(client.events(row["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] in ("done", "failed")
        assert [event["seq"] for event in events] == list(range(len(events)))
        # Resuming past the first event replays only the remainder.
        tail = list(client.events(row["id"], after=events[0]["seq"]))
        assert [event["seq"] for event in tail] == [e["seq"] for e in events[1:]]

    def test_events_for_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            list(client.events("no-such-job"))
        assert excinfo.value.status == 404


def _trace_bytes(trace):
    import io

    stream = io.BytesIO()
    write_trace(stream, trace.records, trace.segments, len(trace))
    return stream.getvalue()


class TestUpload:
    def test_uploaded_trace_is_analyzable(self, client):
        trace = load_workload("naskerx").trace(max_instructions=800)
        info = client.upload_trace(_trace_bytes(trace))
        assert info["trace"].startswith("upload-")
        assert info["cap"] == len(trace)
        row = client.submit({"workload": info["trace"]})[0]
        record = client.wait(row["id"])
        assert record["state"] == "done"
        assert record["result"]["records_processed"] == len(trace)

    def test_bad_payload_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.upload_trace(b"this is not a trace")
        assert excinfo.value.status == 400

    def test_cap_override_on_upload_is_400(self, client):
        trace = load_workload("naskerx").trace(max_instructions=400)
        info = client.upload_trace(_trace_bytes(trace))
        with pytest.raises(ServeClientError) as excinfo:
            client.submit({"workload": info["trace"], "cap": info["cap"] + 1})
        assert excinfo.value.status == 400
        assert "registered at cap" in excinfo.value.message

    def test_upload_over_budget_is_413(self):
        config = ServeConfig(port=0, jobs=1, metrics=False, upload_budget_bytes=64)
        with ServerThread(config) as thread:
            with ServeClient("127.0.0.1", thread.port) as small:
                trace = load_workload("naskerx").trace(max_instructions=200)
                with pytest.raises(ServeClientError) as excinfo:
                    small.upload_trace(_trace_bytes(trace))
                assert excinfo.value.status == 413


class TestErrors:
    def test_bad_spec_is_400(self, client):
        for spec in ({}, {"workload": "xlispx", "cap": "many"}, {"workload": 7}):
            with pytest.raises(ServeClientError) as excinfo:
                client.submit(spec)
            assert excinfo.value.status == 400

    def test_unknown_config_key_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(_spec(config={"window_sz": 8}))
        assert excinfo.value.status == 400
        assert "window_sz" in excinfo.value.message

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.job("f" * 64)
        assert excinfo.value.status == 404

    def test_unknown_route_is_404_and_bad_method_405(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._json("GET", "/v2/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeClientError) as excinfo:
            client._json("DELETE", "/v1/jobs")
        assert excinfo.value.status == 405


class TestHealthAndMetrics:
    def test_healthz(self, client, server):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["run_id"] == server.service.run_id
        assert health["stats"]["submitted"] >= 0
        assert health["uptime_seconds"] > 0

    def test_metrics_snapshot(self, client):
        row = client.submit(_spec(window=24))[0]
        client.wait(row["id"])
        metrics = client.metrics()
        assert metrics["stats"]["executed"] >= 1
        assert "registry" in metrics

    def test_run_report(self, client, server):
        row = client.submit(_spec(window=20))[0]
        client.wait(row["id"])
        report = client.run_report(server.service.run_id)
        assert report["run_id"] == server.service.run_id
        assert len(report["jobs"]) >= 1
        assert "slowest jobs" in report["report"] or report["report"]

    def test_unknown_run_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.run_report("19700101-000000-000000")
        assert excinfo.value.status == 404

    def test_job_listing(self, client):
        row = client.submit(_spec(window=28))[0]
        client.wait(row["id"])
        assert any(item["id"] == row["id"] for item in client.jobs())


def _start_cli_server(tmp_path, extra=()):
    port_file = tmp_path / "port.json"
    if port_file.exists():
        port_file.unlink()
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--journal-dir", str(tmp_path / "journal"),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60
    while not port_file.exists():
        if proc.poll() is not None or time.monotonic() > deadline:
            output = proc.stdout.read().decode()
            proc.kill()
            raise AssertionError(f"server failed to start:\n{output}")
        time.sleep(0.05)
    return proc, json.loads(port_file.read_text())


class TestKeepAliveConnections:
    def test_drain_completes_with_parked_keepalive_client(self):
        """A client holding an idle keep-alive connection open must not
        block shutdown: the drain runs before the socket reap, and parked
        handlers are cancelled (on Python >= 3.12.1 ``wait_closed()``
        waits for them, so the old ordering hung forever)."""
        config = ServeConfig(port=0, jobs=1, metrics=False)
        with ServerThread(config) as thread:
            parked = ServeClient("127.0.0.1", thread.port, client_id="parked")
            try:
                assert parked.healthz()["status"] == "ok"
                started = time.monotonic()
                thread.stop()  # connection still open; must drain promptly
                assert time.monotonic() - started < 30
            finally:
                parked.close()

    def test_idle_keepalive_connection_times_out(self):
        import socket

        config = ServeConfig(port=0, jobs=1, metrics=False, keepalive_timeout=0.2)
        with ServerThread(config) as thread:
            with socket.create_connection(("127.0.0.1", thread.port), timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                sock.settimeout(10)
                assert b"200 OK" in sock.recv(65536)
                # Parked past the idle timeout, the server closes its end.
                assert sock.recv(65536) == b""


class TestDrainAndResume:
    def test_sigterm_drains_and_journal_resumes(self, tmp_path):
        spec = {"workload": "xlispx", "cap": CAP, "config": {"window_size": 40}}

        proc, info = _start_cli_server(tmp_path)
        try:
            with ServeClient("127.0.0.1", info["port"], client_id="drain") as client:
                row = client.submit(spec)[0]
                record = client.wait(row["id"])
                assert record["state"] == "done"
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        run_id = info["run_id"]
        journal = tmp_path / "journal" / f"{run_id}.jsonl"
        assert journal.exists()  # resumable record of the drained run

        # A resumed server replays the completed job from the journal.
        proc, info = _start_cli_server(tmp_path, extra=("--resume", run_id))
        try:
            assert info["run_id"] == run_id
            with ServeClient("127.0.0.1", info["port"], client_id="resume") as client:
                row = client.submit(spec)[0]
                record = client.wait(row["id"])
                assert record["state"] == "done"
                assert record["status"] == "replayed"
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
