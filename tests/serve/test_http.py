"""The minimal HTTP layer: parsing, limits, responses, SSE framing."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    format_sse,
    json_payload,
    read_request,
    render_response,
)


def parse(data: bytes, **kwargs):
    async def _parse():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(_parse())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /v1/jobs/abc/events?after=3 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/jobs/abc/events"
        assert request.query == {"after": "3"}
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"workload": "xlispx"}'
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        request = parse(raw)
        assert request.body == body
        assert request.json() == {"workload": "xlispx"}

    def test_clean_close_returns_none(self):
        assert parse(b"") is None

    def test_percent_decoded_path(self):
        request = parse(b"GET /v1/jobs/a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/jobs/a b"

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive

    @pytest.mark.parametrize(
        "raw,status",
        [
            (b"GET /\r\n\r\n", 400),  # no HTTP version
            (b"GETHTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
            (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 411),
        ],
    )
    def test_malformed_requests(self, raw, status):
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == status

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100, max_body=10)
        assert excinfo.value.status == 413

    def test_oversized_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 400

    def test_json_body_must_be_object(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_render_response_shape(self):
        raw = render_response(202, json_payload({"ok": True}), keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 202 Accepted"
        assert "Connection: close" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"ok": True}

    def test_sse_frame(self):
        frame = format_sse({"seq": 4, "event": "started", "job": "j"}).decode()
        lines = frame.split("\n")
        assert lines[0] == "id: 4"
        assert lines[1] == "event: started"
        assert json.loads(lines[2][len("data: "):]) == {
            "seq": 4,
            "event": "started",
            "job": "j",
        }
        assert frame.endswith("\n\n")
