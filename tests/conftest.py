"""Shared fixtures: small traces, compiled programs, capped workload runs."""

import pytest

from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.lang.compiler import compile_source
from repro.trace.synthetic import TraceBuilder
from repro.workloads.suite import all_workloads

#: Word address used as "variable A/B/C/D/S" in paper-figure traces.
DATA = 0x1000


@pytest.fixture
def unit_config():
    """All-unit latencies, full renaming, conservative syscalls."""
    return AnalysisConfig(latency=LatencyTable.unit())


@pytest.fixture
def figure1_trace():
    """The paper's Figure 1 trace: S := A + B + C + D with fresh registers.

    Registers 1..7 stand in for r0, r1, r2, r3, r4, r5, r6.
    """
    builder = TraceBuilder()
    builder.load(1, DATA + 0)  # load r0, A
    builder.load(2, DATA + 1)  # load r1, B
    builder.ialu(5, 1, 2)      # r4 <- r0 + r1
    builder.load(3, DATA + 2)  # load r2, C
    builder.load(4, DATA + 3)  # load r3, D
    builder.ialu(6, 3, 4)      # r5 <- r2 + r3
    builder.ialu(7, 5, 6)      # r6 <- r4 + r5
    builder.store(7, DATA + 8)  # store r6, S
    return builder.build()


@pytest.fixture
def figure2_trace():
    """Figure 2: the same computation with r0/r1 reused (storage deps)."""
    builder = TraceBuilder()
    builder.load(1, DATA + 0)  # load r0, A
    builder.load(2, DATA + 1)  # load r1, B
    builder.ialu(5, 1, 2)      # r4 <- r0 + r1
    builder.load(1, DATA + 2)  # load r0, C
    builder.load(2, DATA + 3)  # load r1, D
    builder.ialu(6, 1, 2)      # r5 <- r0 + r1
    builder.ialu(7, 5, 6)      # r6 <- r4 + r5
    builder.store(7, DATA + 8)  # store r6, S
    return builder.build()


@pytest.fixture(scope="session")
def workload_traces():
    """Medium (60k-instruction) traces for every suite workload — long
    enough to get past initialization into kernel code."""
    return {w.name: w.trace(max_instructions=60_000) for w in all_workloads()}


@pytest.fixture(scope="session")
def compile_and_run():
    """Helper: compile MiniC source, run it, return (result, trace)."""

    def _run(source, static_frames=False, max_instructions=500_000, **kwargs):
        from repro.cpu.machine import Machine

        program = compile_source(source, static_frames=static_frames)
        machine = Machine(program, **kwargs)
        result = machine.run(max_instructions=max_instructions)
        return result, machine.trace

    return _run
