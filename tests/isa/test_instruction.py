"""Instruction container and disassembly formatting."""

from repro.isa.instruction import Instruction, format_instruction
from repro.isa.registers import fp_reg, parse_register


def _r(name):
    return parse_register(name)


class TestFormatting:
    def test_three_register(self):
        instr = Instruction("add", dst=_r("t0"), src1=_r("t1"), src2=_r("t2"))
        assert format_instruction(instr) == "add t0, t1, t2"

    def test_immediate(self):
        instr = Instruction("addi", dst=_r("t0"), src1=_r("sp"), imm=-4)
        assert format_instruction(instr) == "addi t0, sp, -4"

    def test_load_immediate(self):
        instr = Instruction("li", dst=_r("t0"), imm=42)
        assert format_instruction(instr) == "li t0, 42"

    def test_fp_three_register(self):
        instr = Instruction("fadd", dst=fp_reg(0), src1=fp_reg(1), src2=fp_reg(2))
        assert format_instruction(instr) == "fadd f0, f1, f2"

    def test_fp_compare_mixed_registers(self):
        instr = Instruction("flt", dst=_r("t0"), src1=fp_reg(1), src2=fp_reg(2))
        assert format_instruction(instr) == "flt t0, f1, f2"

    def test_memory_operand(self):
        instr = Instruction("lw", dst=_r("t0"), src1=_r("sp"), imm=8)
        assert format_instruction(instr) == "lw t0, 8(sp)"

    def test_branch_two_sources(self):
        instr = Instruction("beq", src1=_r("t0"), src2=_r("t1"), target=7)
        assert format_instruction(instr) == "beq t0, t1, 7"

    def test_branch_one_source(self):
        instr = Instruction("beqz", src1=_r("t0"), target=3)
        assert format_instruction(instr) == "beqz t0, 3"

    def test_jump(self):
        assert format_instruction(Instruction("j", target=12)) == "j 12"

    def test_jump_register(self):
        assert format_instruction(Instruction("jr", src1=_r("ra"))) == "jr ra"

    def test_bare_opcode(self):
        assert format_instruction(Instruction("syscall")) == "syscall"
        assert str(Instruction("nop")) == "nop"

    def test_spec_property(self):
        assert Instruction("mul").spec.name == "mul"
