"""Opcode registry consistency."""

import pytest

from repro.isa.opclasses import CONTROL_CLASSES, PLACED_CLASSES, OpClass
from repro.isa.opcodes import OPCODES, opcode_spec


class TestRegistry:
    def test_lookup_known(self):
        assert opcode_spec("add").opclass is OpClass.IALU

    def test_lookup_unknown_raises_with_name(self):
        with pytest.raises(KeyError, match="frobnicate"):
            opcode_spec("frobnicate")

    def test_store_opcodes_marked(self):
        assert opcode_spec("sw").writes_memory
        assert opcode_spec("sf").writes_memory
        assert not opcode_spec("lw").writes_memory

    def test_conditional_branches_marked(self):
        for name in ("beq", "bne", "blez", "bgtz", "bltz", "bgez", "beqz", "bnez"):
            assert opcode_spec(name).conditional
        assert not opcode_spec("j").conditional
        assert not opcode_spec("jr").conditional

    def test_latency_classes_match_table1_intent(self):
        assert opcode_spec("mul").opclass is OpClass.IMUL
        assert opcode_spec("div").opclass is OpClass.IDIV
        assert opcode_spec("rem").opclass is OpClass.IDIV
        assert opcode_spec("fadd").opclass is OpClass.FADD
        assert opcode_spec("fmul").opclass is OpClass.FMUL
        assert opcode_spec("fdiv").opclass is OpClass.FDIV
        assert opcode_spec("fsqrt").opclass is OpClass.FDIV

    def test_every_opcode_has_known_format(self):
        formats = {
            "rrr", "rri", "ri", "rl", "fff", "ff", "rff", "fr", "rf",
            "fi", "rm", "fm", "rrb", "rb", "b", "r", "n",
        }
        for spec in OPCODES.values():
            assert spec.fmt in formats, spec.name


class TestClassSets:
    def test_placed_and_control_disjoint(self):
        assert not PLACED_CLASSES & CONTROL_CLASSES

    def test_nop_neither_placed_nor_control(self):
        assert OpClass.NOP not in PLACED_CLASSES
        assert OpClass.NOP not in CONTROL_CLASSES

    def test_syscall_is_placed(self):
        assert OpClass.SYSCALL in PLACED_CLASSES
