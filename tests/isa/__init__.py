"""Test package."""
