"""Register naming and parsing."""

import pytest

from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_SP,
    REG_ZERO,
    fp_reg,
    int_reg,
    is_fp_location,
    parse_register,
    register_name,
)


class TestParsing:
    def test_numeric_int_register(self):
        assert parse_register("r5") == 5

    def test_numeric_fp_register(self):
        assert parse_register("f3") == FP_REG_BASE + 3

    def test_alias_sp(self):
        assert parse_register("sp") == REG_SP == 29

    def test_alias_zero(self):
        assert parse_register("zero") == REG_ZERO == 0

    def test_alias_temporaries(self):
        assert parse_register("t0") == 8
        assert parse_register("t8") == 24

    def test_alias_saved(self):
        assert parse_register("s0") == 16
        assert parse_register("s7") == 23

    def test_dollar_prefix_accepted(self):
        assert parse_register("$sp") == REG_SP
        assert parse_register("$r4") == 4

    def test_case_insensitive(self):
        assert parse_register("SP") == REG_SP
        assert parse_register("R10") == 10

    def test_out_of_range_int_register_rejected(self):
        with pytest.raises(ValueError):
            parse_register("r32")

    def test_out_of_range_fp_register_rejected(self):
        with pytest.raises(ValueError):
            parse_register("f99")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_register("x7")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_register("")


class TestConstruction:
    def test_int_reg_range(self):
        assert int_reg(0) == 0
        assert int_reg(NUM_INT_REGS - 1) == 31

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(NUM_INT_REGS)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_offsets_by_base(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(NUM_FP_REGS - 1) == FP_REG_BASE + 31

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            fp_reg(32)


class TestNaming:
    def test_alias_preferred(self):
        assert register_name(REG_SP) == "sp"

    def test_plain_name_without_alias_preference(self):
        assert register_name(5, prefer_alias=False) == "r5"

    def test_fp_name(self):
        assert register_name(fp_reg(7)) == "f7"

    def test_round_trip_all_registers(self):
        for loc in range(FP_REG_BASE + NUM_FP_REGS):
            assert parse_register(register_name(loc)) == loc

    def test_non_register_location_rejected(self):
        with pytest.raises(ValueError):
            register_name(64)


class TestClassification:
    def test_is_fp_location(self):
        assert not is_fp_location(0)
        assert not is_fp_location(31)
        assert is_fp_location(32)
        assert is_fp_location(63)
        assert not is_fp_location(64)
