"""Storage-location encoding."""

import pytest

from repro.isa.locations import (
    MEM_BASE,
    format_location,
    is_memory_location,
    is_register_location,
    memory_address,
    memory_location,
)


class TestEncoding:
    def test_mem_base_follows_registers(self):
        assert MEM_BASE == 64

    def test_memory_location_round_trip(self):
        for addr in (0, 1, 0x1000, 1 << 20):
            assert memory_address(memory_location(addr)) == addr

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            memory_location(-1)

    def test_register_location_not_decodable_as_memory(self):
        with pytest.raises(ValueError):
            memory_address(10)


class TestClassification:
    def test_registers_classified(self):
        assert is_register_location(0)
        assert is_register_location(63)
        assert not is_register_location(64)

    def test_memory_classified(self):
        assert is_memory_location(memory_location(0))
        assert not is_memory_location(63)


class TestFormatting:
    def test_register_formats_as_name(self):
        assert format_location(29) == "sp"

    def test_memory_formats_with_hex_address(self):
        assert format_location(memory_location(0x1000)) == "mem[0x1000]"
