"""Program container behaviour."""

from repro.asm.assembler import assemble


class TestProgram:
    def test_len(self):
        assert len(assemble("nop\nnop\nnop\n")) == 3

    def test_labels_preserved(self):
        program = assemble("start: nop\nloop: nop\n j loop\n")
        assert program.labels == {"start": 0, "loop": 1}

    def test_disassemble_emits_labels_in_place(self):
        program = assemble("main: li t0, 1\nloop: addi t0, t0, -1\n bnez t0, loop\n")
        text = program.disassemble()
        lines = text.splitlines()
        assert lines[0] == "main:"
        assert "loop:" in lines
        # the label precedes the instruction it names
        assert lines.index("loop:") < lines.index("    bnez t0, 1")

    def test_data_end_tracks_layout(self):
        program = assemble(".data\na: .word 1\nb: .space 5\n.text\n nop\n")
        assert program.data_end == program.data_base + 6

    def test_empty_program(self):
        program = assemble("")
        assert len(program) == 0
        assert program.disassemble() == ""
