"""Two-pass assembler behaviour."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.errors import AsmError
from repro.isa.layout import DATA_BASE_WORDS
from repro.isa.registers import parse_register


class TestText:
    def test_simple_program(self):
        program = assemble("main: li t0, 1\n addi t0, t0, 2\n")
        assert len(program) == 2
        assert program.entry == 0
        assert program.instructions[0].op == "li"
        assert program.instructions[1].imm == 2

    def test_entry_defaults_to_zero_without_main(self):
        program = assemble("li t0, 1\n")
        assert program.entry == 0

    def test_entry_uses_main_label(self):
        program = assemble("nop\nmain: nop\n")
        assert program.entry == 1

    def test_branch_targets_resolved(self):
        program = assemble("loop: addi t0, t0, 1\n bne t0, t1, loop\n")
        assert program.instructions[1].target == 0

    def test_forward_branch_target(self):
        program = assemble("beqz t0, end\n nop\nend: nop\n")
        assert program.instructions[0].target == 2

    def test_numeric_branch_target_allowed(self):
        program = assemble("j 0\n")
        assert program.instructions[0].target == 0

    def test_move_is_addi_zero(self):
        program = assemble("move t0, t1\n")
        instr = program.instructions[0]
        assert instr.op == "move"
        assert instr.imm == 0
        assert instr.src1 == parse_register("t1")

    def test_stmt_directive_tags_following_instructions(self):
        program = assemble(".stmt 7\n nop\n li t0, 1\n.stmt 8\n li t1, 2\n")
        assert program.instructions[0].stmt_id == 7
        assert program.instructions[1].stmt_id == 7
        assert program.instructions[2].stmt_id == 8

    def test_fp_instruction_registers(self):
        program = assemble("fadd f0, f1, f2\n")
        instr = program.instructions[0]
        assert instr.dst == parse_register("f0")
        assert instr.src2 == parse_register("f2")

    def test_float_immediate(self):
        program = assemble("lfi f0, 2.5\n")
        assert program.instructions[0].imm == 2.5

    def test_disassemble_round_trip(self):
        source = "main: li t0, 5\nloop: addi t0, t0, -1\n bnez t0, loop\n"
        program = assemble(source)
        again = assemble(program.disassemble())
        assert [str(i) for i in again.instructions] == [
            str(i) for i in program.instructions
        ]


class TestData:
    def test_word_layout(self):
        program = assemble(".data\nvals: .word 10, 20, 30\n.text\n nop\n")
        base = DATA_BASE_WORDS
        assert program.data[base] == 10
        assert program.data[base + 2] == 30
        assert program.data_end == base + 3

    def test_float_layout(self):
        program = assemble(".data\nf: .float 1.5, -2.0\n.text\n nop\n")
        assert program.data[DATA_BASE_WORDS] == 1.5
        assert program.data[DATA_BASE_WORDS + 1] == -2.0

    def test_space_reserves_without_storing(self):
        program = assemble(".data\nbuf: .space 8\nnext: .word 1\n.text\n nop\n")
        assert DATA_BASE_WORDS not in program.data
        assert program.data[DATA_BASE_WORDS + 8] == 1

    def test_data_label_in_la(self):
        program = assemble(".data\nv: .word 9\n.text\n la t0, v\n")
        assert program.instructions[0].imm == DATA_BASE_WORDS

    def test_data_label_in_load_absolute(self):
        program = assemble(".data\nv: .word 9\n.text\n lw t0, v\n")
        instr = program.instructions[0]
        assert instr.imm == DATA_BASE_WORDS
        assert instr.src1 == 0  # zero-register base

    def test_data_label_with_base_register(self):
        program = assemble(".data\narr: .word 1, 2\n.text\n lw t0, arr(t1)\n")
        instr = program.instructions[0]
        assert instr.imm == DATA_BASE_WORDS
        assert instr.src1 == parse_register("t1")


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble("frob t0\n")

    def test_wrong_arity(self):
        with pytest.raises(AsmError, match="expects 3"):
            assemble("add t0, t1\n")

    def test_undefined_branch_label(self):
        with pytest.raises(AsmError, match="undefined text label"):
            assemble("j nowhere\n")

    def test_undefined_data_label(self):
        with pytest.raises(AsmError, match="undefined data label"):
            assemble("la t0, missing\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate label"):
            assemble("x: nop\nx: nop\n")

    def test_instruction_in_data_segment(self):
        with pytest.raises(AsmError, match="instruction in .data"):
            assemble(".data\n add t0, t1, t2\n")

    def test_fp_register_where_int_expected(self):
        with pytest.raises(AsmError, match="expected integer register"):
            assemble("add f0, t1, t2\n")

    def test_int_register_where_fp_expected(self):
        with pytest.raises(AsmError, match="expected fp register"):
            assemble("fadd t0, f1, f2\n")

    def test_word_rejects_float_value(self):
        with pytest.raises(AsmError, match="must be integer"):
            assemble(".data\nv: .word 1.5\n")

    def test_negative_space_rejected(self):
        with pytest.raises(AsmError, match="non-negative"):
            assemble(".data\nb: .space -1\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError, match="line 3"):
            assemble("nop\nnop\nbogus t0\n")
