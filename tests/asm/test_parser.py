"""Assembler line parsing."""

import pytest

from repro.asm.errors import AsmError
from repro.asm.parser import (
    is_int_literal,
    parse_int,
    parse_mem_operand,
    parse_number,
    parse_source,
    split_operands,
    strip_comment,
)


class TestComments:
    def test_hash_comment_stripped(self):
        assert strip_comment("add t0, t1, t2 # sum") == "add t0, t1, t2 "

    def test_semicolon_comment_stripped(self):
        assert strip_comment("nop ; idle") == "nop "

    def test_no_comment_untouched(self):
        assert strip_comment("lw t0, 4(sp)") == "lw t0, 4(sp)"


class TestOperandSplitting:
    def test_empty(self):
        assert split_operands("") == []

    def test_multiple_trimmed(self):
        assert split_operands(" t0 ,t1,  t2 ") == ["t0", "t1", "t2"]


class TestSourceLines:
    def test_blank_and_comment_lines_skipped(self):
        lines = parse_source("\n# only a comment\n\nnop\n")
        assert len(lines) == 1
        assert lines[0].head == "nop"

    def test_label_only_line(self):
        lines = parse_source("loop:\n")
        assert lines[0].labels == ["loop"]
        assert lines[0].head is None

    def test_label_with_instruction(self):
        lines = parse_source("loop: addi t0, t0, 1")
        assert lines[0].labels == ["loop"]
        assert lines[0].head == "addi"
        assert lines[0].operands == ["t0", "t0", "1"]

    def test_multiple_labels_one_line(self):
        lines = parse_source("a: b: nop")
        assert lines[0].labels == ["a", "b"]

    def test_line_numbers_recorded(self):
        lines = parse_source("nop\n\nnop\n")
        assert [line.number for line in lines] == [1, 3]

    def test_directives_parsed(self):
        lines = parse_source(".data\nval: .word 1, 2")
        assert lines[0].head == ".data"
        assert lines[1].head == ".word"
        assert lines[1].operands == ["1", "2"]

    def test_opcode_lowercased(self):
        lines = parse_source("ADD t0, t1, t2")
        assert lines[0].head == "add"


class TestLiterals:
    def test_decimal(self):
        assert parse_int("42", 1) == 42

    def test_negative(self):
        assert parse_int("-7", 1) == -7

    def test_hex(self):
        assert parse_int("0x10", 1) == 16

    def test_bad_int_raises_with_line(self):
        with pytest.raises(AsmError, match="line 9"):
            parse_int("4x", 9)

    def test_float_number(self):
        assert parse_number("2.5", 1) == 2.5

    def test_exponent_float(self):
        assert parse_number("1e-3", 1) == 0.001

    def test_is_int_literal(self):
        assert is_int_literal("-12")
        assert not is_int_literal("t0")
        assert not is_int_literal("1.5")


class TestMemoryOperands:
    def test_offset_and_base(self):
        assert parse_mem_operand("4(sp)", 1) == ("4", "sp")

    def test_bare_base_defaults_offset_zero(self):
        assert parse_mem_operand("(t0)", 1) == ("0", "t0")

    def test_label_without_base(self):
        assert parse_mem_operand("table", 1) == ("table", None)

    def test_label_with_base(self):
        assert parse_mem_operand("table(t1)", 1) == ("table", "t1")

    def test_negative_offset(self):
        assert parse_mem_operand("-8(sp)", 1) == ("-8", "sp")
