"""Test package."""
