"""Fault-tolerant grid execution: every recovery path, pinned.

Each scenario injects a deterministic fault via :mod:`repro.engine.faults`
(worker crash, hang, corrupted payload, shm attach failure, crash-looping
pool) and asserts the grid still completes with results byte-identical to
a fault-free serial run — plus journal resume after a mid-grid SIGKILL and
the shared-memory sweep protocol.
"""

import json
import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.engine import AnalysisJob, ExperimentEngine
from repro.engine.faults import ENV_DIR, ENV_SPEC, FaultPlan, FaultSpecError, parse_faults
from repro.engine.progress import JOB_DONE, JOB_REPLAYED, JOB_RETRY
from repro.engine.resilience import (
    ENV_MANIFEST_DIR,
    PERMANENT,
    TRANSIENT,
    JournalError,
    RetryPolicy,
    RunJournal,
    ShmManifest,
    classify_failure,
    sweep_stale_manifests,
)
from repro.engine.serialize import result_to_bytes
from repro.harness.runner import TraceStore

CAP = 1500

WORKLOADS = ("xlispx", "eqntottx")
CONFIGS = (AnalysisConfig(), AnalysisConfig(syscall_policy=OPTIMISTIC))


def grid():
    """2 workloads x 2 configs = 4 jobs."""
    return [
        AnalysisJob(workload, CAP, config)
        for workload in WORKLOADS
        for config in CONFIGS
    ]


def wide_grid():
    """2 workloads x 4 configs = 8 jobs (enough crash pressure to break a
    2-worker pool's respawn budget inside one round)."""
    configs = CONFIGS + (
        AnalysisConfig.no_renaming(),
        AnalysisConfig(window_size=64),
    )
    return [
        AnalysisJob(workload, CAP, config)
        for workload in WORKLOADS
        for config in configs
    ]


@pytest.fixture(scope="module")
def serial_bytes():
    results = ExperimentEngine(jobs=1).analyze_grid(grid())
    return [result_to_bytes(result) for result in results]


@pytest.fixture(scope="module")
def wide_serial_bytes():
    results = ExperimentEngine(jobs=1).analyze_grid(wide_grid())
    return [result_to_bytes(result) for result in results]


@pytest.fixture
def fault_env(monkeypatch, tmp_path):
    """Arm REPRO_FAULTS with a fresh ticket dir; isolate the shm manifest."""

    def arm(spec):
        monkeypatch.setenv(ENV_SPEC, spec)
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "fault-state"))
        monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path / "shm-manifests"))

    monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path / "shm-manifests"))
    return arm


def engine_for(tmp_path, retries=2, jobs=2, **kwargs):
    kwargs.setdefault("store", TraceStore(str(tmp_path / "traces")))
    return ExperimentEngine(jobs=jobs, retries=retries, **kwargs)


def assert_no_shm_leaks(tmp_path):
    """No manifest survives a finished grid; any block name a manifest
    ever listed must be unattachable."""
    manifest_dir = tmp_path / "shm-manifests"
    if not manifest_dir.is_dir():
        return
    leftovers = [name for name in os.listdir(manifest_dir) if name.endswith(".manifest")]
    assert leftovers == []


class TestClassification:
    def test_transient_markers(self):
        for error in (
            "worker crashed (exit code 17)",
            "timeout: exceeded 0.05s per-job limit",
            "job lost after worker termination",
            "RuntimeError: injected shm attach failure for block 'psm_x'",
            "corrupted result payload from worker (checksum mismatch)",
            "TraceFormatError: truncated record body",
            "FileNotFoundError: [Errno 2] No such file or directory",
            "OSError: [Errno 5] Input/output error",
        ):
            assert classify_failure(error) == TRANSIENT, error

    def test_permanent_markers(self):
        for error in (
            "KeyError: \"unknown workload 'nonesuch'\"",
            "trace digest mismatch in x.pgt: file is stale or corrupted",
            "ValueError: cap must be >= 1, got 0",
            "ZeroDivisionError: division by zero",
            None,
        ):
            assert classify_failure(error) == PERMANENT, error

    def test_digest_mismatch_beats_io_markers(self):
        # Contains "OSError" yet names a digest mismatch: permanent wins.
        assert classify_failure("OSError-adjacent digest mismatch") == PERMANENT


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert delays[3] == delays[4] == 0.5  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        first = policy.delay(1, key="job-a")
        assert first == policy.delay(1, key="job-a")  # same seed, same delay
        assert first != policy.delay(1, key="job-b")  # different job, spread out
        assert 0.075 <= first <= 0.125  # within +/- jitter of the raw delay

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestFaultHarness:
    def test_parse_specs(self):
        specs = parse_faults("crash@2, hang@*x3")
        assert [(s.kind, s.target, s.times) for s in specs] == [
            ("crash", 2, 1),
            ("hang", "*", 3),
        ]

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_faults("explode@1")

    def test_tickets_limit_firings(self, tmp_path):
        plan = FaultPlan(parse_faults("crash@1x2"), str(tmp_path))
        fired = [plan.should_fire("crash", 1) for _ in range(4)]
        assert fired == [True, True, False, False]
        assert plan.should_fire("crash", 0) is False  # wrong target

    def test_no_state_dir_always_fires(self):
        plan = FaultPlan(parse_faults("crash@*"), None)
        assert all(plan.should_fire("crash", index) for index in range(5))


class TestWorkerCrashRecovery:
    def test_crash_on_job_k_retries_to_byte_identical(
        self, serial_bytes, tmp_path, fault_env
    ):
        fault_env("crash@2")
        engine = engine_for(tmp_path, retries=2, jobs=2)
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        assert engine.telemetry.retries >= 1
        # Depending on whether the doomed worker's JOB_STARTED message won
        # the race with its own death, the failure reads "worker crashed"
        # or "job lost after worker termination" — both transient, both
        # must funnel into a retry of grid index 2.
        outcome_events = [e for e in engine.telemetry.events if e.kind == JOB_RETRY]
        assert any(e.index == 2 for e in outcome_events)
        assert_no_shm_leaks(tmp_path)


class TestHangRecovery:
    def test_hung_worker_killed_and_retried_without_stalling(
        self, serial_bytes, tmp_path, fault_env
    ):
        fault_env("hang@1")
        engine = engine_for(tmp_path, retries=2, jobs=2, timeout=3.0)
        started = time.perf_counter()
        results = engine.analyze_grid(grid())
        elapsed = time.perf_counter() - started
        assert [result_to_bytes(result) for result in results] == serial_bytes
        assert engine.telemetry.retries >= 1
        retried = [e for e in engine.telemetry.events if e.kind == JOB_RETRY]
        assert any("timeout" in (e.error or "") for e in retried)
        # One timeout window plus the grid, not a stall: well under two windows.
        assert elapsed < 30.0
        assert_no_shm_leaks(tmp_path)


class TestCorruptResultRecovery:
    def test_corrupted_payload_detected_and_retried(
        self, serial_bytes, tmp_path, fault_env
    ):
        fault_env("corrupt@1")
        engine = engine_for(tmp_path, retries=2, jobs=2)
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        retried = [e for e in engine.telemetry.events if e.kind == JOB_RETRY]
        assert any("corrupted result payload" in (e.error or "") for e in retried)
        assert_no_shm_leaks(tmp_path)


class TestShmAttachRecovery:
    def test_attach_failure_retried(self, serial_bytes, tmp_path, fault_env):
        fault_env("shm@0")
        engine = engine_for(tmp_path, retries=2, jobs=2)
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        retried = [e for e in engine.telemetry.events if e.kind == JOB_RETRY]
        assert any("shm attach" in (e.error or "") for e in retried)
        assert_no_shm_leaks(tmp_path)


class TestPermanentFailures:
    def test_unknown_workload_not_retried(self, tmp_path, fault_env):
        engine = engine_for(tmp_path, retries=3, jobs=1)
        outcomes = engine.run_grid([AnalysisJob("nonesuch", CAP), AnalysisJob("xlispx", CAP)])
        bad, good = outcomes
        assert not bad.ok and bad.attempts == 1
        assert "quarantined" not in bad.error
        assert good.ok
        assert engine.telemetry.retries == 0

    def test_transient_exhaustion_quarantines(self, tmp_path, fault_env):
        # Jobs 0 and 1 crash their worker on every attempt. Two of them,
        # so every retry round stays a multi-job pool batch (a single-job
        # batch runs in-process, where faults never fire).
        fault_env("crash@0x99,crash@1x99")
        engine = engine_for(tmp_path, retries=2, jobs=2)
        outcomes = engine.run_grid(grid())
        for outcome in outcomes[:2]:
            assert not outcome.ok
            assert outcome.attempts == 3  # retries + 1
            assert "quarantined after 3 attempts" in outcome.error
        assert all(outcome.ok for outcome in outcomes[2:])
        assert_no_shm_leaks(tmp_path)


class TestPoolDegradation:
    def test_crash_looping_pool_degrades_to_serial(
        self, wide_serial_bytes, tmp_path, fault_env, monkeypatch, caplog
    ):
        # Every job crashes its worker and no ticket dir limits the fault,
        # so the pool burns its respawn budget mid-round; the remainder
        # must complete in-process (where the fault hooks never fire).
        monkeypatch.setenv(ENV_SPEC, "crash@*")
        monkeypatch.delenv(ENV_DIR, raising=False)
        engine = engine_for(tmp_path, retries=3, jobs=2)
        with caplog.at_level("WARNING", logger="repro.engine.resilience"):
            results = engine.analyze_grid(wide_grid())
        assert [result_to_bytes(result) for result in results] == wide_serial_bytes
        assert any("serial" in message for message in caplog.messages)
        assert_no_shm_leaks(tmp_path)


class TestFailFast:
    def test_fail_fast_skips_rest(self, tmp_path):
        engine = engine_for(tmp_path, retries=0, jobs=1, fail_fast=True)
        jobs = [
            AnalysisJob("xlispx", CAP),
            AnalysisJob("nonesuch", CAP),
            AnalysisJob("eqntottx", CAP),
        ]
        outcomes = engine.run_grid(jobs)
        assert outcomes[0].ok
        assert not outcomes[1].ok and "nonesuch" in outcomes[1].error
        assert not outcomes[2].ok and "fail-fast" in outcomes[2].error

    def test_keep_going_is_default(self, tmp_path):
        engine = engine_for(tmp_path, retries=0, jobs=1)
        jobs = [
            AnalysisJob("nonesuch", CAP),
            AnalysisJob("xlispx", CAP),
        ]
        outcomes = engine.run_grid(jobs)
        assert [outcome.ok for outcome in outcomes] == [False, True]


class TestRunJournal:
    def test_outcomes_journaled_as_they_land(self, tmp_path, fault_env):
        journal_dir = str(tmp_path / "journal")
        engine = engine_for(tmp_path, retries=0, jobs=1, journal_dir=journal_dir)
        engine.analyze_grid(grid())
        path = os.path.join(journal_dir, f"{engine.run_id}.jsonl")
        entries = [json.loads(line) for line in open(path)]
        assert entries[0]["event"] == "run"
        outcomes = [entry for entry in entries if entry["event"] == "outcome"]
        assert len(outcomes) == len(grid())
        assert all(entry["ok"] and entry["result"] for entry in outcomes)
        assert all(entry["schema"] == 1 for entry in entries)

    def test_resume_replays_completed_jobs(self, serial_bytes, tmp_path, fault_env):
        journal_dir = str(tmp_path / "journal")
        store_dir = str(tmp_path / "traces")
        first = ExperimentEngine(
            store=TraceStore(store_dir), jobs=1, journal_dir=journal_dir
        )
        first.analyze_grid(grid()[:2])  # half the grid, then "crash"
        run_id = first.run_id

        resumed = ExperimentEngine(
            store=TraceStore(store_dir),
            jobs=1,
            journal_dir=journal_dir,
            resume=run_id,
        )
        results = resumed.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        assert resumed.telemetry.replays == 2
        done = [e for e in resumed.telemetry.events if e.kind == JOB_DONE]
        assert len(done) == 2  # only the unfinished half re-executed

    def test_resume_reexecutes_on_config_change(self, tmp_path, fault_env):
        journal_dir = str(tmp_path / "journal")
        store_dir = str(tmp_path / "traces")
        first = ExperimentEngine(
            store=TraceStore(store_dir), jobs=1, journal_dir=journal_dir
        )
        first.analyze_grid([AnalysisJob("xlispx", CAP)])
        resumed = ExperimentEngine(
            store=TraceStore(store_dir),
            jobs=1,
            journal_dir=journal_dir,
            resume=first.run_id,
        )
        resumed.analyze_grid([AnalysisJob("xlispx", CAP, AnalysisConfig(window_size=32))])
        assert resumed.telemetry.replays == 0

    def test_torn_final_line_tolerated(self, tmp_path, fault_env):
        journal_dir = str(tmp_path / "journal")
        first = engine_for(tmp_path, retries=0, jobs=1, journal_dir=journal_dir)
        first.analyze_grid(grid()[:2])
        path = os.path.join(journal_dir, f"{first.run_id}.jsonl")
        with open(path, "a") as handle:
            handle.write('{"schema": 1, "event": "outc')  # torn mid-write
        journal = RunJournal(journal_dir, run_id=first.run_id, resume=True)
        assert journal.replay_count == 2

    def test_corrupt_interior_line_refuses_resume(self, tmp_path, fault_env):
        journal_dir = str(tmp_path / "journal")
        first = engine_for(tmp_path, retries=0, jobs=1, journal_dir=journal_dir)
        first.analyze_grid(grid()[:2])
        path = os.path.join(journal_dir, f"{first.run_id}.jsonl")
        lines = open(path).readlines()
        lines[1] = lines[1][:20] + "\n"  # damage an interior record
        open(path, "w").writelines(lines)
        with pytest.raises(JournalError, match="corrupt journal line"):
            RunJournal(journal_dir, run_id=first.run_id, resume=True)

    def test_missing_journal_refuses_resume(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            RunJournal(str(tmp_path / "journal"), run_id="nope", resume=True)


#: Driver for the SIGKILL scenario: runs the module grid with a hang fault
#: on the last job so the run journals everything else and then sticks.
_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.engine import AnalysisJob, ExperimentEngine
from repro.harness.runner import TraceStore

trace_dir, journal_dir = sys.argv[1:3]
grid = [
    AnalysisJob(workload, {cap}, config)
    for workload in {workloads!r}
    for config in (AnalysisConfig(), AnalysisConfig(syscall_policy=OPTIMISTIC))
]
engine = ExperimentEngine(
    store=TraceStore(trace_dir), jobs=2, retries=0, journal_dir=journal_dir
)
print(engine.run_id, flush=True)
engine.run_grid(grid)
"""


class TestSigkillResume:
    def _journaled_ok(self, path):
        count = 0
        try:
            with open(path) as handle:
                for line in handle:
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if entry.get("event") == "outcome" and entry.get("ok"):
                        count += 1
        except FileNotFoundError:
            return 0
        return count

    def test_resume_after_sigkill_reexecutes_only_unfinished(
        self, serial_bytes, tmp_path, monkeypatch
    ):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        src = os.path.abspath(src)
        trace_dir = str(tmp_path / "traces")
        journal_dir = str(tmp_path / "journal")
        manifest_dir = str(tmp_path / "shm-manifests")
        monkeypatch.setenv(ENV_MANIFEST_DIR, manifest_dir)

        # Warm the trace cache so the driver starts analyzing immediately.
        warm = TraceStore(trace_dir)
        for workload in WORKLOADS:
            warm.ensure_on_disk(workload, CAP)

        env = dict(os.environ)
        env[ENV_SPEC] = "hang@3"  # the last job never finishes
        env[ENV_DIR] = str(tmp_path / "fault-state")
        env[ENV_MANIFEST_DIR] = manifest_dir

        script = _DRIVER.format(src=src, cap=CAP, workloads=WORKLOADS)
        process = subprocess.Popen(
            [sys.executable, "-c", script, trace_dir, journal_dir],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            start_new_session=True,
        )
        try:
            run_id = process.stdout.readline().strip()
            assert run_id
            journal_path = os.path.join(journal_dir, f"{run_id}.jsonl")
            deadline = time.time() + 120
            while time.time() < deadline:
                if self._journaled_ok(journal_path) >= 3:
                    break
                if process.poll() is not None:
                    pytest.fail("driver exited before it could be killed")
                time.sleep(0.1)
            else:
                pytest.fail("driver never journaled 3 outcomes")
            journaled = self._journaled_ok(journal_path)
            # Mid-grid SIGKILL of the whole process group: no atexit, no
            # signal handlers, workers die too — the worst case.
            os.killpg(process.pid, signal.SIGKILL)
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            process.stdout.close()

        # The killed run leaked its shm manifest (and possibly blocks).
        manifests = [
            name for name in os.listdir(manifest_dir) if name.endswith(".manifest")
        ]
        assert manifests, "SIGKILL'd run should leave its manifest behind"
        leaked_names = []
        for name in manifests:
            with open(os.path.join(manifest_dir, name)) as handle:
                leaked_names += [line.strip() for line in handle if line.strip()]

        resumed = ExperimentEngine(
            store=TraceStore(trace_dir),
            jobs=2,
            retries=2,
            journal_dir=journal_dir,
            resume=run_id,
        )
        results = resumed.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        # Journal replay count asserted: exactly the journaled jobs replay,
        # exactly the remainder re-executes.
        assert resumed.telemetry.replays == journaled
        executed = [e for e in resumed.telemetry.events if e.kind == JOB_DONE]
        assert len(executed) == len(grid()) - journaled
        replay_events = [e for e in resumed.telemetry.events if e.kind == JOB_REPLAYED]
        assert len(replay_events) == journaled

        # The startup sweep reclaimed the dead run's blocks: nothing left
        # to attach, no manifest left behind by the finished resume run.
        for name in leaked_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name, create=False)
        leftover = [
            name for name in os.listdir(manifest_dir) if name.endswith(".manifest")
        ]
        assert leftover == []


class TestShmManifest:
    def test_sweep_reclaims_blocks_of_dead_runs(self, tmp_path):
        manifest_dir = str(tmp_path / "manifests")
        os.makedirs(manifest_dir)
        block = shared_memory.SharedMemory(create=True, size=64)
        name = block.name.lstrip("/")
        block.close()
        # A pid that is certainly dead: a subprocess that already exited.
        probe = subprocess.run([sys.executable, "-c", "import os; print(os.getpid())"],
                               capture_output=True, text=True)
        dead_pid = int(probe.stdout.strip())
        with open(os.path.join(manifest_dir, f"{dead_pid}.manifest"), "w") as handle:
            handle.write(name + "\n")
        reclaimed = sweep_stale_manifests(manifest_dir)
        assert name in reclaimed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)
        assert os.listdir(manifest_dir) == []

    def test_live_pid_manifest_untouched(self, tmp_path):
        manifest_dir = str(tmp_path / "manifests")
        os.makedirs(manifest_dir)
        path = os.path.join(manifest_dir, f"{os.getpid()}.manifest")
        with open(path, "w") as handle:
            handle.write("some_block\n")
        assert sweep_stale_manifests(manifest_dir) == []
        assert os.path.exists(path)
        os.remove(path)

    def test_register_release_roundtrip(self, tmp_path):
        manifest = ShmManifest(str(tmp_path / "manifests"))
        manifest.register("block_a")
        manifest.register("block_b")
        assert os.path.exists(manifest.path)
        manifest.release("block_a")
        manifest.release("block_b")
        assert not os.path.exists(manifest.path)

    def test_sweep_own_noop_in_forked_child(self, tmp_path):
        manifest = ShmManifest(str(tmp_path / "manifests"))
        manifest._pid = os.getpid() + 1  # simulate a fork
        manifest.register("block_a")
        assert manifest.sweep_own() == []


class TestWorkerSignalIsolation:
    """A forked worker must not write signal bytes into a wakeup fd it
    inherited from the parent.

    When the parent runs an asyncio loop (repro.serve), its signal
    handlers register a self-pipe via ``signal.set_wakeup_fd``. Workers
    fork with that registration intact, so any signal delivered to a
    worker — including the pool's own ``terminate()`` backstop at grid
    teardown — would land its signal byte in the PARENT's loop, which
    then drains as if the server itself had been SIGTERMed. The worker
    detaches the fd before installing its handlers; this pins it.
    """

    def test_sigterm_to_worker_leaves_parent_wakeup_fd_silent(self):
        import multiprocessing
        import socket
        import threading

        from repro.engine.pool import JOB_STARTED
        from repro.engine.pool import _worker_main

        if threading.current_thread() is not threading.main_thread():
            pytest.skip("set_wakeup_fd requires the main thread")

        receiver, sender = socket.socketpair()
        receiver.setblocking(False)
        sender.setblocking(False)
        previous = signal.set_wakeup_fd(sender.fileno())
        task_queue = multiprocessing.Queue()
        result_queue = multiprocessing.Queue()
        worker = multiprocessing.Process(
            target=_worker_main, args=(0, task_queue, result_queue, False)
        )
        try:
            worker.start()
            # A bogus task: the worker reports JOB_STARTED (proof it is
            # past setup, i.e. past the set_wakeup_fd(-1) detach), fails
            # the job, and blocks on the queue again.
            task_queue.put((0, {}, ("file", "/nonexistent.pgt"), None))
            deadline = time.monotonic() + 30
            started = False
            while time.monotonic() < deadline:
                try:
                    kind, _, _, _ = result_queue.get(timeout=0.2)
                except Exception:
                    continue
                if kind == JOB_STARTED:
                    started = True
                    break
            assert started, "worker never reported JOB_STARTED"
            os.kill(worker.pid, signal.SIGTERM)
            worker.join(timeout=30)
            assert worker.exitcode is not None, "worker survived SIGTERM"
            try:
                leaked = receiver.recv(16)
            except BlockingIOError:
                leaked = b""
            assert leaked == b"", (
                f"worker signal leaked into the parent's wakeup fd: {leaked!r}"
            )
        finally:
            signal.set_wakeup_fd(previous)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=10)
            task_queue.close()
            task_queue.cancel_join_thread()
            result_queue.close()
            result_queue.cancel_join_thread()
            receiver.close()
            sender.close()
