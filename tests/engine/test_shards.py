"""Sharded file analysis through the engine pool: parallelism, slice
refs, crash recovery, and shard-granularity journaled resume."""

import json
import os

import pytest

from repro.core.analyzer import analyze
from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.core.stream import summarize_segment
from repro.engine import ExperimentEngine
from repro.engine.faults import ENV_DIR, ENV_SPEC
from repro.engine.pool import JobFailedError, _load_trace
from repro.engine.progress import JOB_DONE, JOB_REPLAYED, JOB_RETRY
from repro.engine.resilience import ENV_MANIFEST_DIR
from repro.engine.serialize import (
    result_from_dict,
    result_to_bytes,
    result_to_dict,
    segment_summary_from_dict,
    segment_summary_to_dict,
)
from repro.engine.shards import ShardTraceStore, shard_analyze_file, shard_grid
from repro.trace.chunked import segment_manifest
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import write_trace_file
from repro.trace.synthetic import random_trace

RECORDS = 400
SHARD = 64


@pytest.fixture
def trace():
    return random_trace(21, RECORDS, syscall_fraction=0.03)


@pytest.fixture
def trace_path(tmp_path, trace):
    path = str(tmp_path / "big.pgt2")
    write_trace_file(path, trace)
    return path


@pytest.fixture
def isolated_shm(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path / "shm-manifests"))


class TestParallelEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig(),
            AnalysisConfig(window_size=16),
            AnalysisConfig.no_renaming(),
            AnalysisConfig(memory_disambiguation="conservative"),
        ],
    )
    def test_pool_sharded_equals_whole(
        self, trace_path, trace, config, isolated_shm
    ):
        engine = ExperimentEngine(jobs=2)
        result = shard_analyze_file(trace_path, config, shard_size=SHARD, engine=engine)
        assert result_to_dict(result) == result_to_dict(analyze(trace, config))

    def test_ineligible_config_streams_sequentially(
        self, trace_path, trace, isolated_shm
    ):
        config = AnalysisConfig(syscall_policy=OPTIMISTIC)
        engine = ExperimentEngine(jobs=2)
        result = shard_analyze_file(trace_path, config, shard_size=SHARD, engine=engine)
        assert result_to_dict(result) == result_to_dict(analyze(trace, config))
        assert not engine.telemetry.events  # no pool jobs ran

    def test_no_engine_streams_sequentially(self, trace_path, trace):
        result = shard_analyze_file(trace_path, AnalysisConfig(), shard_size=SHARD)
        assert result_to_dict(result) == result_to_dict(analyze(trace, AnalysisConfig()))


class TestShardTraceStore:
    def test_store_protocol(self, trace_path, trace):
        manifest = segment_manifest(trace_path, SHARD)
        store = ShardTraceStore(trace_path, manifest)
        grid = shard_grid(manifest, AnalysisConfig())
        assert grid, "trace should contain splice-eligible segments"
        job = grid[0]
        columnar = store.columnar(job.workload, job.cap)
        entry = manifest.entries[int(job.workload.rsplit("-", 1)[1])]
        assert len(columnar.opclass) == entry.count
        path, digest = store.ensure_on_disk(job.workload, job.cap)
        assert path == store.path
        assert digest == entry.digest  # segment identity, not whole-trace

    def test_slice_ref_decodes_exactly_one_segment(self, trace_path, trace):
        manifest = segment_manifest(trace_path, SHARD)
        store = ShardTraceStore(trace_path, manifest)
        job = shard_grid(manifest, AnalysisConfig())[0]
        ref = store.trace_ref(job.workload, job.cap)
        assert ref[0] == "slice"
        spec = json.loads(ref[1])
        assert spec["count"] == job.cap
        loaded = _load_trace(ref)
        assert isinstance(loaded, ColumnarTrace)
        direct = store.columnar(job.workload, job.cap)
        assert list(loaded.to_buffer()) == list(direct.to_buffer())

    def test_unknown_workload_and_cap_rejected(self, trace_path):
        manifest = segment_manifest(trace_path, SHARD)
        store = ShardTraceStore(trace_path, manifest)
        with pytest.raises(KeyError):
            store.columnar("nonesuch", 1)
        job = shard_grid(manifest, AnalysisConfig())[0]
        with pytest.raises(ValueError, match="records"):
            store.columnar(job.workload, job.cap + 1)
        assert store.invalidate(job.workload, job.cap) is False


class TestSummarySerialization:
    @pytest.mark.parametrize(
        "config",
        [AnalysisConfig(), AnalysisConfig.no_renaming(), AnalysisConfig(window_size=8)],
    )
    def test_round_trip_is_exact(self, trace, config):
        columnar = ColumnarTrace.from_buffer(trace)
        summary = summarize_segment(columnar, config)
        encoded = json.loads(json.dumps(segment_summary_to_dict(summary)))
        clone = segment_summary_from_dict(encoded)
        assert segment_summary_to_dict(clone) == segment_summary_to_dict(summary)
        assert clone.well == summary.well
        assert clone.ring == summary.ring

    def test_result_dispatch_round_trip(self, trace):
        summary = summarize_segment(ColumnarTrace.from_buffer(trace), AnalysisConfig())
        data = result_to_dict(summary)
        assert data["__kind__"] == "segment_summary"
        clone = result_from_dict(json.loads(result_to_bytes(summary).decode()))
        assert result_to_dict(clone) == data


class TestShardFaultRecovery:
    def test_crash_mid_segment_retries_to_identical(
        self, trace_path, trace, monkeypatch, tmp_path, isolated_shm
    ):
        monkeypatch.setenv(ENV_SPEC, "crash@1")
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "fault-state"))
        engine = ExperimentEngine(jobs=2, retries=2)
        result = shard_analyze_file(
            trace_path, AnalysisConfig(), shard_size=SHARD, engine=engine
        )
        assert result_to_dict(result) == result_to_dict(analyze(trace, AnalysisConfig()))
        retried = [e for e in engine.telemetry.events if e.kind == JOB_RETRY]
        assert retried, "the crashed segment job must have been retried"

    def test_exhausted_retries_surface_as_failure(
        self, trace_path, monkeypatch, tmp_path, isolated_shm
    ):
        monkeypatch.setenv(ENV_SPEC, "crash@0x99,crash@1x99")
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "fault-state"))
        engine = ExperimentEngine(jobs=2, retries=1)
        with pytest.raises(JobFailedError):
            shard_analyze_file(
                trace_path, AnalysisConfig(), shard_size=SHARD, engine=engine
            )


class TestShardJournalResume:
    def test_crashed_run_resumes_at_segment_granularity(
        self, trace_path, trace, monkeypatch, tmp_path, isolated_shm
    ):
        journal_dir = str(tmp_path / "journal")
        config = AnalysisConfig()
        expected = result_to_dict(analyze(trace, config))

        # Run 1: every attempt of segment jobs 0 and 1 crashes its worker;
        # with retries exhausted the shard run fails, but the completed
        # segment summaries are already journaled.
        monkeypatch.setenv(ENV_SPEC, "crash@0x99,crash@1x99")
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "fault-state"))
        first = ExperimentEngine(jobs=2, retries=1, journal_dir=journal_dir)
        with pytest.raises(JobFailedError):
            shard_analyze_file(trace_path, config, shard_size=SHARD, engine=first)
        first.close()
        journaled = 0
        with open(os.path.join(journal_dir, f"{first.run_id}.jsonl")) as handle:
            for line in handle:
                entry = json.loads(line)
                if entry.get("event") == "outcome" and entry.get("ok"):
                    journaled += 1
                    assert entry["result"]["__kind__"] == "segment_summary"
        assert journaled > 0, "completed segment summaries must be journaled"

        # Run 2: faults disarmed, resume from the journal — the journaled
        # segments replay, only the crashed ones re-execute, and the
        # stitched result is identical to whole-trace analysis.
        monkeypatch.delenv(ENV_SPEC)
        resumed = ExperimentEngine(
            jobs=2, retries=1, journal_dir=journal_dir, resume=first.run_id
        )
        result = shard_analyze_file(trace_path, config, shard_size=SHARD, engine=resumed)
        assert result_to_dict(result) == expected
        assert resumed.telemetry.replays == journaled
        executed = [e for e in resumed.telemetry.events if e.kind == JOB_DONE]
        replayed = [e for e in resumed.telemetry.events if e.kind == JOB_REPLAYED]
        assert len(replayed) == journaled
        assert executed, "the crashed segments must re-execute on resume"
