"""Graceful-shutdown helpers: flush on exit and on SIGTERM/SIGINT."""

import os
import signal
import time

from repro.engine.shutdown import flush_engine, graceful_flush


class FakeEngine:
    def __init__(self, fail=False):
        self.closed = 0
        self.fail = fail

    def close(self):
        self.closed += 1
        if self.fail:
            raise RuntimeError("journal handle already gone")


class TestFlushEngine:
    def test_flushes(self):
        engine = FakeEngine()
        flush_engine(engine)
        assert engine.closed == 1

    def test_never_raises(self, caplog):
        engine = FakeEngine(fail=True)
        with caplog.at_level("WARNING", logger="repro.engine.shutdown"):
            flush_engine(engine)
        assert engine.closed == 1
        assert any("flush failed" in r.getMessage() for r in caplog.records)


class TestGracefulFlush:
    def test_flushes_on_normal_exit(self):
        engines = [FakeEngine(), FakeEngine()]
        with graceful_flush(*engines):
            pass
        assert [engine.closed for engine in engines] == [1, 1]

    def test_flushes_when_body_raises(self):
        engine = FakeEngine()
        try:
            with graceful_flush(engine):
                raise RuntimeError("grid exploded")
        except RuntimeError:
            pass
        assert engine.closed == 1

    def test_signal_flushes_then_reraises_to_previous_handler(self):
        received = []
        previous = signal.signal(signal.SIGTERM, lambda signum, frame: received.append(signum))
        engine = FakeEngine()
        try:
            with graceful_flush(engine, signals=(signal.SIGTERM,)):
                os.kill(os.getpid(), signal.SIGTERM)
                deadline = time.monotonic() + 5
                while not received and time.monotonic() < deadline:
                    time.sleep(0.01)  # let the interpreter deliver the signal
            # The wrapped handler flushed, restored the previous handler,
            # and re-raised the signal against the process — which our
            # recording handler (the "parent's" handler) then saw.
            assert received == [signal.SIGTERM]
            assert engine.closed >= 1
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_handlers_restored_after_exit(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGTERM, marker)
        try:
            with graceful_flush(FakeEngine(), signals=(signal.SIGTERM,)):
                assert signal.getsignal(signal.SIGTERM) is not marker
            assert signal.getsignal(signal.SIGTERM) is marker
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_noop_outside_main_thread(self):
        import threading

        engine = FakeEngine()
        errors = []

        def body():
            try:
                with graceful_flush(engine, signals=(signal.SIGTERM,)):
                    pass
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert not errors
        assert engine.closed == 1  # still flushes on exit, just no handlers
