"""Exact result serialization round-trips."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.twopass import twopass_analyze
from repro.engine.serialize import result_from_dict, result_to_bytes, result_to_dict
from repro.trace.synthetic import random_trace


def _results_equal(left, right) -> bool:
    return result_to_bytes(left) == result_to_bytes(right)


@pytest.fixture(scope="module")
def trace():
    return random_trace(seed=42, length=2000)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig(),
            AnalysisConfig(collect_lifetimes=True),
            AnalysisConfig(collect_profile=False),
            AnalysisConfig(window_size=32, branch_predictor="gshare"),
        ],
        ids=["default", "lifetimes", "no-profile", "windowed-predicted"],
    )
    def test_forward_round_trip(self, trace, config):
        result = analyze(trace, config)
        restored = result_from_dict(result_to_dict(result))
        assert _results_equal(result, restored)
        # the scalar surface the tables read must match exactly
        assert restored.available_parallelism == result.available_parallelism
        assert restored.critical_path_length == result.critical_path_length
        assert restored.peak_live_well == result.peak_live_well
        assert restored.config == result.config

    def test_twopass_round_trip(self, trace):
        result = twopass_analyze(trace, AnalysisConfig())
        restored = result_from_dict(result_to_dict(result))
        assert _results_equal(result, restored)

    def test_profile_survives_exactly(self, trace):
        result = analyze(trace, AnalysisConfig())
        restored = result_from_dict(result_to_dict(result))
        assert restored.profile.counts == result.profile.counts
        assert isinstance(next(iter(restored.profile.counts)), int)

    def test_lifetimes_survive_exactly(self, trace):
        result = analyze(trace, AnalysisConfig(collect_lifetimes=True))
        restored = result_from_dict(result_to_dict(result))
        assert restored.lifetimes.lifetime_histogram == result.lifetimes.lifetime_histogram
        assert restored.lifetimes.sharing_histogram == result.lifetimes.sharing_histogram

    def test_bytes_are_canonical(self, trace):
        result = analyze(trace, AnalysisConfig())
        assert result_to_bytes(result) == result_to_bytes(
            result_from_dict(result_to_dict(result))
        )
