"""Exact result serialization round-trips."""

import dataclasses
import json
import random

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.core.twopass import twopass_analyze
from repro.engine.serialize import result_from_dict, result_to_bytes, result_to_dict
from repro.trace.synthetic import random_trace


def _results_equal(left, right) -> bool:
    return result_to_bytes(left) == result_to_bytes(right)


@pytest.fixture(scope="module")
def trace():
    return random_trace(seed=42, length=2000)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig(),
            AnalysisConfig(collect_lifetimes=True),
            AnalysisConfig(collect_profile=False),
            AnalysisConfig(window_size=32, branch_predictor="gshare"),
        ],
        ids=["default", "lifetimes", "no-profile", "windowed-predicted"],
    )
    def test_forward_round_trip(self, trace, config):
        result = analyze(trace, config)
        restored = result_from_dict(result_to_dict(result))
        assert _results_equal(result, restored)
        # the scalar surface the tables read must match exactly
        assert restored.available_parallelism == result.available_parallelism
        assert restored.critical_path_length == result.critical_path_length
        assert restored.peak_live_well == result.peak_live_well
        assert restored.config == result.config

    def test_twopass_round_trip(self, trace):
        result = twopass_analyze(trace, AnalysisConfig())
        restored = result_from_dict(result_to_dict(result))
        assert _results_equal(result, restored)

    def test_profile_survives_exactly(self, trace):
        result = analyze(trace, AnalysisConfig())
        restored = result_from_dict(result_to_dict(result))
        assert restored.profile.counts == result.profile.counts
        assert isinstance(next(iter(restored.profile.counts)), int)

    def test_lifetimes_survive_exactly(self, trace):
        result = analyze(trace, AnalysisConfig(collect_lifetimes=True))
        restored = result_from_dict(result_to_dict(result))
        assert restored.lifetimes.lifetime_histogram == result.lifetimes.lifetime_histogram
        assert restored.lifetimes.sharing_histogram == result.lifetimes.sharing_histogram

    def test_bytes_are_canonical(self, trace):
        result = analyze(trace, AnalysisConfig())
        assert result_to_bytes(result) == result_to_bytes(
            result_from_dict(result_to_dict(result))
        )


def _config_round_trip(config: AnalysisConfig) -> AnalysisConfig:
    """Through the JSON wire format — what the result cache and the verify
    artifacts both rely on."""
    return AnalysisConfig.from_canonical(json.loads(json.dumps(config.canonical())))


class TestConfigRoundTrip:
    """Every AnalysisConfig field survives canonical()/from_canonical()
    through actual JSON text, digest-identically."""

    #: One non-default value per field (field order mirrors the dataclass).
    NON_DEFAULTS = {
        "syscall_policy": "optimistic",
        "rename_registers": False,
        "rename_stack": False,
        "rename_data": False,
        "window_size": 17,
        "latency": LatencyTable.unit().with_overrides(FDIV=31),
        "resources": ResourceModel(universal=3),
        "branch_predictor": "gshare",
        "memory_disambiguation": "conservative",
        "collect_lifetimes": True,
        "collect_profile": False,
    }

    def test_every_field_covered(self):
        assert set(self.NON_DEFAULTS) == {
            field.name for field in dataclasses.fields(AnalysisConfig)
        }

    @pytest.mark.parametrize("name", sorted(NON_DEFAULTS))
    def test_single_field_round_trips(self, name):
        config = AnalysisConfig(**{name: self.NON_DEFAULTS[name]})
        restored = _config_round_trip(config)
        assert restored == config
        assert restored.digest() == config.digest()
        assert getattr(restored, name) == self.NON_DEFAULTS[name]

    def test_all_fields_at_once(self):
        config = AnalysisConfig(**self.NON_DEFAULTS)
        assert _config_round_trip(config).digest() == config.digest()

    def test_per_class_resources(self):
        from repro.isa.opclasses import OpClass

        config = AnalysisConfig(resources=ResourceModel(per_class={OpClass.LOAD: 2}))
        restored = _config_round_trip(config)
        assert restored.digest() == config.digest()
        assert restored.resources == config.resources

    def test_random_configs_round_trip(self):
        from repro.verify.generate import sample_config

        for seed in range(50):
            config = sample_config(random.Random(seed))
            restored = _config_round_trip(config)
            assert restored.digest() == config.digest(), config.describe()

    def test_digest_distinguishes_every_field(self):
        """The digest the cache keys on actually depends on each field."""
        base = AnalysisConfig()
        digests = {base.digest()}
        for name, value in self.NON_DEFAULTS.items():
            digests.add(AnalysisConfig(**{name: value}).digest())
        assert len(digests) == len(self.NON_DEFAULTS) + 1
