"""Engine end-to-end: parallel determinism, caching, fault containment."""

import os

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.engine import AnalysisJob, ExperimentEngine, JobFailedError
from repro.engine.progress import JOB_CACHED, JOB_DONE, JOB_FAILED, EngineTelemetry
from repro.engine.serialize import result_to_bytes
from repro.harness.runner import TraceStore

CAP = 3000

#: 3 workloads x 4 configs — the determinism grid the issue prescribes.
WORKLOADS = ("xlispx", "cc1x", "eqntottx")
CONFIGS = (
    AnalysisConfig(),
    AnalysisConfig(syscall_policy=OPTIMISTIC),
    AnalysisConfig.no_renaming(),
    AnalysisConfig(window_size=64, collect_lifetimes=True),
)


def grid():
    return [
        AnalysisJob(workload, CAP, config)
        for workload in WORKLOADS
        for config in CONFIGS
    ]


@pytest.fixture(scope="module")
def serial_bytes():
    results = ExperimentEngine(jobs=1).analyze_grid(grid())
    return [result_to_bytes(result) for result in results]


class TestParallelDeterminism:
    def test_jobs4_byte_identical_to_serial(self, serial_bytes, tmp_path):
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=4
        )
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes

    def test_jobs2_spawn_start_method(self, serial_bytes, tmp_path):
        """The fork-safe bootstrap must also work under spawn, where workers
        rebuild everything from the wire messages."""
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")),
            jobs=2,
            start_method="spawn",
        )
        # one job per (workload, config) pair would be slow under spawn;
        # a single workload x 4 configs covers the bootstrap path
        sub = [AnalysisJob(WORKLOADS[0], CAP, config) for config in CONFIGS]
        results = engine.analyze_grid(sub)
        assert [result_to_bytes(result) for result in results] == serial_bytes[: len(CONFIGS)]

    def test_memory_only_store_gets_scratch_directory(self, serial_bytes):
        engine = ExperimentEngine(jobs=4)  # no trace dir given
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes
        assert engine.store.directory  # engine attached a scratch cache


class TestSharedTraceReuse:
    def test_each_workload_decoded_once_in_parent(
        self, serial_bytes, tmp_path, monkeypatch
    ):
        """A ``--jobs 4`` grid must decode each distinct workload trace at
        most once — in the parent, into the shared-memory columnar block —
        and workers must attach that block instead of re-decoding the
        ``.pgt`` file per process."""
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("decode counting via inherited patches needs fork")

        trace_dir = str(tmp_path / "traces")
        warm = TraceStore(trace_dir)
        for workload in WORKLOADS:
            warm.ensure_on_disk(workload, CAP)

        # Count decodes by appending to a file: append writes survive fork,
        # so worker-side decodes (there must be none) would show up too.
        log = tmp_path / "decodes.log"

        import repro.engine.pool as pool_module
        import repro.harness.runner as runner_module
        import repro.trace.io as io_module
        from repro.trace.columnar import ColumnarTrace

        original_from_file = ColumnarTrace.from_file.__func__

        def counted_from_file(cls, path):
            with open(log, "a") as handle:
                handle.write(f"columnar {os.getpid()}\n")
            return original_from_file(cls, path)

        original_read = io_module.read_trace_file

        def counted_read(path):
            with open(log, "a") as handle:
                handle.write(f"tuple {os.getpid()}\n")
            return original_read(path)

        monkeypatch.setattr(
            ColumnarTrace, "from_file", classmethod(counted_from_file)
        )
        monkeypatch.setattr(pool_module, "read_trace_file", counted_read)
        monkeypatch.setattr(runner_module, "read_trace_file", counted_read)

        # Fresh store on the warm directory: nothing in memory, so every
        # trace the grid needs has to come through a counted decode path.
        engine = ExperimentEngine(
            store=TraceStore(trace_dir), jobs=4, start_method="fork"
        )
        results = engine.analyze_grid(grid())
        assert [result_to_bytes(result) for result in results] == serial_bytes

        lines = log.read_text().splitlines()
        columnar_decodes = [line for line in lines if line.startswith("columnar")]
        tuple_decodes = [line for line in lines if line.startswith("tuple")]
        parent = str(os.getpid())
        # One columnar decode per distinct workload, all in the parent;
        # workers attached shared memory and never touched a trace file.
        assert len(columnar_decodes) == len(WORKLOADS)
        assert all(line.split()[1] == parent for line in columnar_decodes)
        assert tuple_decodes == []


class TestResultCache:
    def test_warm_cache_serves_all_jobs(self, serial_bytes, tmp_path):
        cache_dir = str(tmp_path / "results")
        cold = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=4, result_cache=cache_dir
        )
        cold_results = cold.analyze_grid(grid())
        assert cold.telemetry.cache_hits == 0

        warm = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=4, result_cache=cache_dir
        )
        warm_results = warm.analyze_grid(grid())
        assert warm.telemetry.cache_hits == len(grid())
        assert [result_to_bytes(r) for r in warm_results] == [
            result_to_bytes(r) for r in cold_results
        ] == serial_bytes

    def test_serial_and_parallel_share_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "results")
        serial = ExperimentEngine(jobs=1, result_cache=cache_dir)
        serial.analyze_grid(grid())
        parallel = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=4, result_cache=cache_dir
        )
        parallel.analyze_grid(grid())
        assert parallel.telemetry.cache_hits == len(grid())

    def test_config_change_misses(self, tmp_path):
        cache_dir = str(tmp_path / "results")
        engine = ExperimentEngine(jobs=1, result_cache=cache_dir)
        engine.analyze("xlispx", CAP, AnalysisConfig())
        engine.analyze("xlispx", CAP, AnalysisConfig(window_size=8))
        assert engine.telemetry.cache_hits == 0
        engine.analyze("xlispx", CAP, AnalysisConfig())
        assert engine.telemetry.cache_hits == 1


class TestFaultContainment:
    def test_bad_workload_fails_alone_parallel(self, tmp_path):
        engine = ExperimentEngine(store=TraceStore(str(tmp_path / "traces")), jobs=4)
        jobs = [
            AnalysisJob("xlispx", CAP),
            AnalysisJob("nonesuch", CAP),
            AnalysisJob("cc1x", CAP),
        ]
        outcomes = engine.run_grid(jobs)
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert "nonesuch" in outcomes[1].error

    def test_bad_workload_fails_alone_serial(self):
        engine = ExperimentEngine(jobs=1)
        outcomes = engine.run_grid([AnalysisJob("nonesuch", CAP), AnalysisJob("xlispx", CAP)])
        assert [outcome.ok for outcome in outcomes] == [False, True]

    def test_strict_grid_raises_with_details(self):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(JobFailedError, match="nonesuch"):
            engine.analyze_grid([AnalysisJob("nonesuch", CAP)])

    def test_timeout_kills_job_but_not_grid(self, tmp_path):
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=2, timeout=0.05
        )
        jobs = [
            # Far exceeds the limit even on the columnar fast path.
            AnalysisJob("matrix300x", 500_000),
            AnalysisJob("xlispx", CAP),
        ]
        outcomes = engine.run_grid(jobs)
        slow, fast = outcomes
        assert not slow.ok and "timeout" in slow.error
        assert fast.ok

    def test_repeated_timeouts_do_not_crash_the_pool(self, tmp_path):
        """Every job blows the limit: the pool must keep terminating and
        respawning workers (ignoring their ghost messages) and report one
        failed outcome per job instead of crashing or hanging."""
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=2, timeout=0.01
        )
        # 200k records keep each job well over the limit even on the
        # columnar fast path.
        jobs = [AnalysisJob(workload, 200_000) for workload in WORKLOADS]
        outcomes = engine.run_grid(jobs)
        # Exactly one outcome per job — no crash, no hang, no dropped job.
        # (A job can still sneak to completion while the parent is busy
        # terminating the *other* worker, so not every job must fail.)
        assert len(outcomes) == len(jobs)
        assert [outcome.index for outcome in outcomes] == list(range(len(jobs)))
        failures = [outcome for outcome in outcomes if not outcome.ok]
        assert failures
        assert all(
            "timeout" in outcome.error or "lost" in outcome.error
            for outcome in failures
        )


class TestProgress:
    def test_events_cover_every_job(self, tmp_path):
        telemetry = EngineTelemetry()
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")), jobs=4, progress=telemetry
        )
        engine.analyze_grid(grid())
        done = [event for event in telemetry.events if event.kind == JOB_DONE]
        assert len(done) == len(grid())
        assert {event.index for event in done} == set(range(len(grid())))
        assert all(event.seconds > 0 for event in done)

    def test_telemetry_summary_counts(self, tmp_path):
        engine = ExperimentEngine(jobs=1, result_cache=str(tmp_path / "rc"))
        engine.analyze_grid(grid()[:2])
        engine.analyze_grid(grid()[:2])
        summary = engine.telemetry.summary()
        assert "4 jobs done" in summary and "2 cached" in summary

    def test_failed_events_emitted(self):
        telemetry = EngineTelemetry()
        engine = ExperimentEngine(jobs=1, progress=telemetry)
        engine.run_grid([AnalysisJob("nonesuch", CAP)])
        assert telemetry.failures == 1
        assert telemetry.events[-1].kind == JOB_FAILED

    def test_cached_events_emitted(self, tmp_path):
        telemetry = EngineTelemetry()
        cache_dir = str(tmp_path / "rc")
        ExperimentEngine(jobs=1, result_cache=cache_dir).analyze("xlispx", CAP)
        engine = ExperimentEngine(jobs=1, result_cache=cache_dir, progress=telemetry)
        engine.analyze("xlispx", CAP)
        assert telemetry.events[-1].kind == JOB_CACHED
