"""Job specs and stable digests."""

import json
import subprocess
import sys

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.engine.jobs import AnalysisJob
from repro.isa.opclasses import OpClass


class TestConfigDigest:
    def test_equal_configs_equal_digests(self):
        assert AnalysisConfig().digest() == AnalysisConfig().digest()

    def test_every_switch_changes_digest(self):
        base = AnalysisConfig()
        variants = [
            AnalysisConfig(syscall_policy=OPTIMISTIC),
            AnalysisConfig(rename_registers=False),
            AnalysisConfig(rename_stack=False),
            AnalysisConfig(rename_data=False),
            AnalysisConfig(window_size=64),
            AnalysisConfig(latency=LatencyTable.unit()),
            AnalysisConfig(resources=ResourceModel(universal=4)),
            AnalysisConfig(branch_predictor="gshare"),
            AnalysisConfig(memory_disambiguation="conservative"),
            AnalysisConfig(collect_lifetimes=True),
            AnalysisConfig(collect_profile=False),
        ]
        digests = {config.digest() for config in variants}
        assert len(digests) == len(variants)
        assert base.digest() not in digests

    def test_canonical_round_trip(self):
        config = AnalysisConfig(
            syscall_policy=OPTIMISTIC,
            window_size=256,
            latency=LatencyTable.default().with_overrides(IMUL=3),
            resources=ResourceModel(universal=8, per_class={OpClass.FMUL: 2}),
            branch_predictor="bimodal",
            memory_disambiguation="conservative",
            collect_lifetimes=True,
        )
        restored = AnalysisConfig.from_canonical(config.canonical())
        assert restored == config
        assert restored.digest() == config.digest()

    def test_digest_stable_across_interpreters(self):
        """The digest must not depend on PYTHONHASHSEED or any per-process
        state: a worker and its parent must agree on cache keys."""
        script = (
            "from repro.core.config import AnalysisConfig; "
            "print(AnalysisConfig(window_size=64).digest())"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "12345")
        }
        assert runs == {AnalysisConfig(window_size=64).digest()}


class TestAnalysisJob:
    def test_round_trip(self):
        job = AnalysisJob(
            "cc1x", 5000, AnalysisConfig(window_size=16), method="twopass", optimize=True
        )
        restored = AnalysisJob.from_canonical(job.canonical())
        assert restored == job
        assert restored.digest() == job.digest()

    def test_wire_form_is_json_safe(self):
        job = AnalysisJob("cc1x", 5000, AnalysisConfig(resources=ResourceModel(universal=2)))
        assert AnalysisJob.from_canonical(json.loads(json.dumps(job.canonical()))) == job

    def test_digest_covers_every_axis(self):
        base = AnalysisJob("cc1x", 5000)
        variants = [
            AnalysisJob("xlispx", 5000),
            AnalysisJob("cc1x", 6000),
            AnalysisJob("cc1x", 5000, AnalysisConfig(window_size=4)),
            AnalysisJob("cc1x", 5000, method="twopass"),
            AnalysisJob("cc1x", 5000, optimize=True),
        ]
        digests = {job.digest() for job in variants}
        assert len(digests) == len(variants)
        assert base.digest() not in digests

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis method"):
            AnalysisJob("cc1x", 100, method="sideways")

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError, match="cap must be"):
            AnalysisJob("cc1x", 0)

    def test_trace_key_ignores_config(self):
        one = AnalysisJob("cc1x", 100, AnalysisConfig())
        two = AnalysisJob("cc1x", 100, AnalysisConfig(window_size=8))
        assert one.trace_key == two.trace_key

    def test_describe_mentions_extras(self):
        text = AnalysisJob("cc1x", 100, method="twopass", optimize=True).describe()
        assert "twopass" in text and "optimized" in text


class TestMethods:
    """The pinned verification methods ride the same job machinery."""

    def test_registry_complete(self):
        from repro.engine.jobs import METHODS

        assert set(METHODS) == {
            "forward",
            "twopass",
            "legacy",
            "columnar",
            "vkernel",
            "reference",
            "oracle",
            "stream",
            "sharded",
            "segment",
        }

    @pytest.mark.parametrize(
        "method,columnar",
        [
            ("forward", True),
            ("columnar", True),
            ("vkernel", True),
            ("twopass", False),
            ("legacy", False),
            ("reference", False),
            ("oracle", False),
            ("stream", True),
            ("sharded", True),
            ("segment", True),
        ],
    )
    def test_prefers_columnar(self, method, columnar):
        assert AnalysisJob("cc1x", 100, method=method).prefers_columnar is columnar

    @pytest.mark.parametrize(
        "method",
        ["forward", "twopass", "legacy", "columnar", "reference", "stream", "sharded"],
    )
    def test_all_methods_agree_on_either_representation(self, method):
        """Every method accepts both trace representations via job.run and
        lands on the forward analyzer's result (modulo documented masks)."""
        from repro.core.analyzer import analyze
        from repro.trace.columnar import ColumnarTrace
        from repro.trace.synthetic import random_trace

        trace = random_trace(seed=3, length=400)
        expected = analyze(trace, AnalysisConfig())
        job = AnalysisJob("w", len(trace), method=method)
        for representation in (trace, ColumnarTrace.from_buffer(trace)):
            result = job.run(representation)
            assert result.critical_path_length == expected.critical_path_length
            assert result.placed_operations == expected.placed_operations
            assert result.profile.counts == expected.profile.counts

    def test_oracle_method_runs_via_job(self):
        from repro.core.analyzer import analyze
        from repro.trace.synthetic import random_trace

        trace = random_trace(seed=3, length=200)
        expected = analyze(trace, AnalysisConfig())
        result = AnalysisJob("w", len(trace), method="oracle").run(trace)
        assert result.critical_path_length == expected.critical_path_length
        assert result.peak_live_well == -1  # oracle sentinel


class TestJobBackend:
    """The backend is an execution strategy, never identity: it rides the
    wire format (only when non-default) but is stripped from digests so
    both backends share one result-cache entry."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis backend"):
            AnalysisJob("cc1x", 100, backend="cuda")

    def test_digest_ignores_backend(self):
        py = AnalysisJob("cc1x", 5000)
        np = AnalysisJob("cc1x", 5000, backend="numpy")
        assert py.digest() == np.digest()

    def test_canonical_omits_default_backend(self):
        """Canonical forms written before the backend knob existed must
        stay byte-identical for python-backend jobs."""
        assert "backend" not in AnalysisJob("cc1x", 100).canonical()
        assert AnalysisJob("cc1x", 100, backend="numpy").canonical()["backend"] == "numpy"

    def test_round_trip_preserves_backend(self):
        job = AnalysisJob("cc1x", 5000, backend="numpy")
        assert AnalysisJob.from_canonical(job.canonical()) == job

    def test_legacy_canonical_defaults_to_python(self):
        data = AnalysisJob("cc1x", 100).canonical()
        data.pop("backend", None)
        assert AnalysisJob.from_canonical(data).backend == "python"

    def test_describe_mentions_numpy(self):
        assert "numpy" in AnalysisJob("cc1x", 100, backend="numpy").describe()
        assert "numpy" not in AnalysisJob("cc1x", 100).describe()

    @pytest.mark.parametrize(
        "method", ["forward", "columnar", "stream", "sharded", "legacy", "twopass"]
    )
    def test_run_identical_across_backends(self, method):
        """backend="numpy" never changes a job's result — backend-aware
        methods route through the vectorized engine (or fall back), and
        implementation-pinned methods ignore the preference entirely."""
        from repro.trace.synthetic import random_trace

        trace = random_trace(seed=5, length=300, syscall_fraction=0.03)
        py = AnalysisJob("w", len(trace), method=method).run(trace)
        np = AnalysisJob("w", len(trace), method=method, backend="numpy").run(trace)
        assert np.critical_path_length == py.critical_path_length
        assert np.placed_operations == py.placed_operations

    def test_segment_method_identical_across_backends(self):
        from repro.trace.synthetic import random_trace

        trace = random_trace(seed=6, length=300, syscall_fraction=0.05)
        py = AnalysisJob("w", len(trace), method="segment").run(trace)
        np = AnalysisJob(
            "w", len(trace), method="segment", backend="numpy"
        ).run(trace)
        assert np == py  # SegmentSummary dataclass equality, field by field
