"""Result cache hit/miss behavior."""

import json
import os

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.engine.cache import SCHEMA_VERSION, ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.serialize import result_to_bytes
from repro.trace.synthetic import random_trace

TRACE = random_trace(seed=5, length=1500)
DIGEST = TRACE.digest()


def _job(**kwargs):
    return AnalysisJob("cc1x", 1500, kwargs.pop("config", AnalysisConfig()), **kwargs)


class TestKeys:
    def test_key_is_deterministic(self):
        assert cache_key(DIGEST, _job()) == cache_key(DIGEST, _job())

    def test_key_varies_with_trace_and_job(self):
        other_digest = random_trace(seed=6, length=1500).digest()
        assert cache_key(DIGEST, _job()) != cache_key(other_digest, _job())
        assert cache_key(DIGEST, _job()) != cache_key(
            DIGEST, _job(config=AnalysisConfig(window_size=2))
        )


class TestStoreLoad:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        result = analyze(TRACE, job.config)
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, result)
        loaded = cache.load(key)
        assert result_to_bytes(loaded) == result_to_bytes(result)
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_miss_on_absent_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load(cache_key(DIGEST, _job())) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.load(key) is None
        assert not os.path.exists(path)

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        entry = json.load(open(path))
        entry["schema"] = SCHEMA_VERSION + 1
        json.dump(entry, open(path, "w"))
        assert cache.load(key) is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        entry = json.load(open(os.path.join(str(tmp_path), f"{key}.json")))
        assert entry["trace_digest"] == DIGEST
        assert entry["job"] == job.canonical()
