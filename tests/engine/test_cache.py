"""Result cache hit/miss behavior."""

import json
import os

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.engine.cache import SCHEMA_VERSION, ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.serialize import result_to_bytes
from repro.trace.synthetic import random_trace

TRACE = random_trace(seed=5, length=1500)
DIGEST = TRACE.digest()


def _job(**kwargs):
    return AnalysisJob("cc1x", 1500, kwargs.pop("config", AnalysisConfig()), **kwargs)


class TestKeys:
    def test_key_is_deterministic(self):
        assert cache_key(DIGEST, _job()) == cache_key(DIGEST, _job())

    def test_key_varies_with_trace_and_job(self):
        other_digest = random_trace(seed=6, length=1500).digest()
        assert cache_key(DIGEST, _job()) != cache_key(other_digest, _job())
        assert cache_key(DIGEST, _job()) != cache_key(
            DIGEST, _job(config=AnalysisConfig(window_size=2))
        )


class TestStoreLoad:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        result = analyze(TRACE, job.config)
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, result)
        loaded = cache.load(key)
        assert result_to_bytes(loaded) == result_to_bytes(result)
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_miss_on_absent_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load(cache_key(DIGEST, _job())) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.load(key) is None
        assert not os.path.exists(path)

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        entry = json.load(open(path))
        entry["schema"] = SCHEMA_VERSION + 1
        json.dump(entry, open(path, "w"))
        assert cache.load(key) is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        entry = json.load(open(os.path.join(str(tmp_path), f"{key}.json")))
        assert entry["trace_digest"] == DIGEST
        assert entry["job"] == job.canonical()


class TestQuarantine:
    def _poison(self, cache, tmp_path, job):
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        return key, path

    def test_bad_entry_moved_aside_not_deleted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, path = self._poison(cache, tmp_path, _job())
        assert cache.load(key) is None
        assert not os.path.exists(path)
        quarantined = path + ".corrupt"
        assert os.path.exists(quarantined)
        assert open(quarantined).read() == "{ not json"  # evidence preserved
        assert cache.quarantined == 1
        assert len(cache) == 0  # .corrupt files are not entries

    def test_quarantined_entry_stays_a_miss_then_restores(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key, path = self._poison(cache, tmp_path, job)
        assert cache.load(key) is None
        assert cache.load(key) is None  # clean miss, no re-quarantine
        assert cache.quarantined == 1
        result = analyze(TRACE, job.config)
        cache.store(key, DIGEST, job, result)
        assert result_to_bytes(cache.load(key)) == result_to_bytes(result)

    def test_warns_once_per_run(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path))
        key_a, _ = self._poison(cache, tmp_path, _job())
        key_b, _ = self._poison(cache, tmp_path, _job(config=AnalysisConfig(window_size=2)))
        with caplog.at_level("DEBUG", logger="repro.engine.cache"):
            assert cache.load(key_a) is None
            assert cache.load(key_b) is None
        warnings = [r for r in caplog.records if r.levelname == "WARNING"]
        assert len(warnings) == 1
        assert "quarantined" in warnings[0].getMessage()
        debugs = [r for r in caplog.records if r.levelname == "DEBUG"]
        assert len(debugs) == 1
        assert cache.quarantined == 2


class TestParseSize:
    def test_plain_bytes_and_suffixes(self):
        from repro.engine.cache import parse_size

        assert parse_size("1234") == 1234
        assert parse_size("4K") == 4096
        assert parse_size("2m") == 2 * 1024**2
        assert parse_size(" 1G ") == 1024**3
        assert parse_size("0") == 0

    def test_rejects_garbage(self):
        import pytest

        from repro.engine.cache import parse_size

        for bad in ("", "K", "1.5M", "-3", "10T"):
            with pytest.raises(ValueError):
                parse_size(bad)


class TestSizeBudget:
    """LRU eviction under a byte budget (--result-cache-max-bytes)."""

    def _fill(self, cache, count):
        """Store ``count`` distinct entries, oldest first; returns their
        keys in storage order with strictly increasing mtimes."""
        keys = []
        for index in range(count):
            job = _job(config=AnalysisConfig(window_size=index + 2))
            result = analyze(TRACE.head(64), job.config)
            key = cache_key(DIGEST, job)
            cache.store(key, DIGEST, job, result)
            os.utime(cache._path(key), (index, index))  # pin LRU order
            keys.append(key)
        return keys

    def _entry_size(self, tmp_path):
        probe = ResultCache(str(tmp_path / "probe"))
        job = _job(config=AnalysisConfig(window_size=99))
        key = cache_key(DIGEST, job)
        probe.store(key, DIGEST, job, analyze(TRACE.head(64), job.config))
        return os.path.getsize(probe._path(key))

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._fill(cache, 4)
        assert len(cache) == 4
        assert cache.evicted == 0

    def test_oldest_entries_evicted_past_budget(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), max_bytes=3 * size + size // 2)
        keys = self._fill(cache, 5)
        assert len(cache) == 3
        assert cache.load(keys[0]) is None  # oldest two gone
        assert cache.load(keys[1]) is None
        assert cache.load(keys[4]) is not None
        assert cache.evicted == 2

    def test_hit_refreshes_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), max_bytes=10 * size)
        keys = self._fill(cache, 3)
        assert cache.load(keys[0]) is not None  # refreshes keys[0]'s mtime
        cache.max_bytes = 3 * size - size // 2  # room for 2 entries
        evicted = cache.enforce_budget()
        assert evicted == 1
        assert cache.load(keys[0]) is not None  # survived: recently hit
        assert cache.load(keys[1]) is None      # evicted: now the LRU

    def test_newest_entry_survives_any_budget(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=1)
        keys = self._fill(cache, 3)
        assert len(cache) == 1
        assert cache.load(keys[-1]) is not None

    def test_live_foreign_lock_skips_eviction(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=1)
        with open(cache._lock_path(), "w") as handle:
            handle.write("pid=0\n")
        keys = self._fill(cache, 3)
        assert cache.evicted == 0
        assert len(cache) == 3  # another evictor presumed live; we skipped
        os.remove(cache._lock_path())
        assert cache.enforce_budget() == 2
        assert cache.load(keys[-1]) is not None

    def test_stale_lock_is_broken(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path), max_bytes=1)
        lock = cache._lock_path()
        with open(lock, "w") as handle:
            handle.write("pid=0\n")
        os.utime(lock, (1, 1))  # ancient: a crashed evictor's leftover
        with caplog.at_level("WARNING", logger="repro.engine.cache"):
            self._fill(cache, 2)
        assert cache.evicted == 1
        assert any("stale" in r.getMessage() for r in caplog.records)
        assert not os.path.exists(lock)  # released after use

    def test_eviction_counter_reaches_obs(self, tmp_path):
        from repro.obs import metrics as obs

        registry = obs.enable()
        try:
            registry.drain()
            cache = ResultCache(str(tmp_path), max_bytes=1)
            self._fill(cache, 3)
            assert registry.snapshot()["counters"]["result_cache.evicted"] == 2
        finally:
            obs.disable()
