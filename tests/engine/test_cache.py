"""Result cache hit/miss behavior."""

import json
import os

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.engine.cache import SCHEMA_VERSION, ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.serialize import result_to_bytes
from repro.trace.synthetic import random_trace

TRACE = random_trace(seed=5, length=1500)
DIGEST = TRACE.digest()


def _job(**kwargs):
    return AnalysisJob("cc1x", 1500, kwargs.pop("config", AnalysisConfig()), **kwargs)


class TestKeys:
    def test_key_is_deterministic(self):
        assert cache_key(DIGEST, _job()) == cache_key(DIGEST, _job())

    def test_key_varies_with_trace_and_job(self):
        other_digest = random_trace(seed=6, length=1500).digest()
        assert cache_key(DIGEST, _job()) != cache_key(other_digest, _job())
        assert cache_key(DIGEST, _job()) != cache_key(
            DIGEST, _job(config=AnalysisConfig(window_size=2))
        )


class TestStoreLoad:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        result = analyze(TRACE, job.config)
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, result)
        loaded = cache.load(key)
        assert result_to_bytes(loaded) == result_to_bytes(result)
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_miss_on_absent_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load(cache_key(DIGEST, _job())) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.load(key) is None
        assert not os.path.exists(path)

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        entry = json.load(open(path))
        entry["schema"] = SCHEMA_VERSION + 1
        json.dump(entry, open(path, "w"))
        assert cache.load(key) is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        entry = json.load(open(os.path.join(str(tmp_path), f"{key}.json")))
        assert entry["trace_digest"] == DIGEST
        assert entry["job"] == job.canonical()


class TestQuarantine:
    def _poison(self, cache, tmp_path, job):
        key = cache_key(DIGEST, job)
        cache.store(key, DIGEST, job, analyze(TRACE, job.config))
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        return key, path

    def test_bad_entry_moved_aside_not_deleted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, path = self._poison(cache, tmp_path, _job())
        assert cache.load(key) is None
        assert not os.path.exists(path)
        quarantined = path + ".corrupt"
        assert os.path.exists(quarantined)
        assert open(quarantined).read() == "{ not json"  # evidence preserved
        assert cache.quarantined == 1
        assert len(cache) == 0  # .corrupt files are not entries

    def test_quarantined_entry_stays_a_miss_then_restores(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        key, path = self._poison(cache, tmp_path, job)
        assert cache.load(key) is None
        assert cache.load(key) is None  # clean miss, no re-quarantine
        assert cache.quarantined == 1
        result = analyze(TRACE, job.config)
        cache.store(key, DIGEST, job, result)
        assert result_to_bytes(cache.load(key)) == result_to_bytes(result)

    def test_warns_once_per_run(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path))
        key_a, _ = self._poison(cache, tmp_path, _job())
        key_b, _ = self._poison(cache, tmp_path, _job(config=AnalysisConfig(window_size=2)))
        with caplog.at_level("DEBUG", logger="repro.engine.cache"):
            assert cache.load(key_a) is None
            assert cache.load(key_b) is None
        warnings = [r for r in caplog.records if r.levelname == "WARNING"]
        assert len(warnings) == 1
        assert "quarantined" in warnings[0].getMessage()
        debugs = [r for r in caplog.records if r.levelname == "DEBUG"]
        assert len(debugs) == 1
        assert cache.quarantined == 2
