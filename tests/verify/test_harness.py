"""The differential + metamorphic harness, including mutation smoke tests.

The mutation tests are the harness verifying itself: a deliberately buggy
analyzer variant must be caught, shrunk to a tiny counterexample, and
persisted as a replayable artifact. A harness that passes on mutants is
worse than no harness.
"""

import random

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.core.resources import ResourceModel
from repro.trace.synthetic import TraceBuilder
from repro.verify.generate import generate_case, generate_trace
from repro.verify.harness import (
    BASELINE_METHOD,
    DIFF_METHODS,
    GeneratedTraceStore,
    case_plan,
    evaluate_case,
    run_verification,
    verify_case,
)
from repro.verify.mutations import apply_mutation

DATA = 0x1000


class TestCasePlan:
    def test_diff_methods_always_present(self):
        tags = {tag for tag, _, _ in case_plan(AnalysisConfig())}
        assert f"diff:{BASELINE_METHOD}" in tags
        for method in DIFF_METHODS + ("oracle",):
            assert f"diff:{method}" in tags

    def test_oracle_skipped_under_resources(self):
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        tags = {tag for tag, _, _ in case_plan(config)}
        assert "diff:oracle" not in tags

    def test_monotone_chains_skipped_under_resources(self):
        """First-fit scheduling anomalies void pointwise monotonicity."""
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        tags = {tag for tag, _, _ in case_plan(config)}
        assert not any(tag.startswith(("rename:", "window:")) for tag in tags)

    def test_scale_chain_always_present(self):
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        tags = {tag for tag, _, _ in case_plan(config)}
        assert {"scale:1", "scale:2", "scale:3"} <= tags

    def test_plan_configs_preserve_trace_independent_switches(self):
        config = AnalysisConfig(window_size=8, branch_predictor="gshare")
        for tag, _, cfg in case_plan(config):
            if tag.startswith("rename:"):
                assert cfg.window_size == 8
                assert cfg.branch_predictor == "gshare"


class TestBackendFocusPlan:
    def test_backend_case_always_present(self):
        tags = {tag for tag, _, _ in case_plan(AnalysisConfig(), focus="backend")}
        assert "backend:case" in tags

    def test_paired_py_np_tags(self):
        plan = case_plan(AnalysisConfig(), focus="backend")
        tags = {tag for tag, _, _ in plan}
        np_tags = {tag for tag in tags if tag.endswith(":np")}
        assert np_tags  # rename and window chains both contribute
        for tag in np_tags:
            assert tag[:-3] + ":py" in tags
        methods = {tag: method for tag, method, _ in plan}
        for tag in np_tags:
            assert methods[tag] == "vkernel"
            assert methods[tag[:-3] + ":py"] == "columnar"

    def test_resource_configs_keep_only_the_case_diff(self):
        """Constrained resources are backend-ineligible, so the chains
        would compare python against python — only the (falling-back)
        case diff remains."""
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        tags = {tag for tag, _, _ in case_plan(config, focus="backend")}
        assert tags == {f"diff:{BASELINE_METHOD}", "backend:case"}

    def test_unknown_focus_rejected(self):
        with pytest.raises(ValueError, match="unknown verification focus"):
            case_plan(AnalysisConfig(), focus="nope")

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_cases_pass(self, seed):
        case = generate_case(77, seed)
        assert verify_case(case.trace, case.config, focus="backend") == []


class TestVerifyCase:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_cases_pass(self, seed):
        case = generate_case(99, seed)
        assert verify_case(case.trace, case.config) == []

    def test_detects_injected_disagreement(self):
        """evaluate_case flags a result that disagrees with the baseline."""
        from repro.engine.jobs import METHODS

        case = generate_case(99, 0)
        plan = case_plan(case.config)
        results = {
            tag: METHODS[method](case.trace, cfg) for tag, method, cfg in plan
        }
        broken = results[f"diff:{BASELINE_METHOD}"]
        tag = f"diff:{DIFF_METHODS[0]}"
        results[tag].critical_path_length = broken.critical_path_length + 1
        failures = evaluate_case(case.trace, case.config, results)
        assert any("critical_path_length" in failure for failure in failures)

    def test_tolerates_missing_results(self):
        case = generate_case(99, 1)
        assert evaluate_case(case.trace, case.config, {}) == []


class TestGeneratedTraceStore:
    def test_round_trip(self):
        store = GeneratedTraceStore()
        trace = generate_trace(random.Random(0))
        cap = store.add("caseX", trace)
        assert cap == len(trace)
        assert store.trace("caseX", cap).digest() == trace.digest()

    def test_unknown_name_raises(self):
        store = GeneratedTraceStore()
        with pytest.raises(KeyError):
            store.trace("nothere", 10)

    def test_wrong_cap_raises(self):
        store = GeneratedTraceStore()
        cap = store.add("caseX", generate_trace(random.Random(0)))
        with pytest.raises(KeyError):
            store.trace("caseX", cap + 1)

    def test_optimized_variant_raises(self):
        store = GeneratedTraceStore()
        cap = store.add("caseX", generate_trace(random.Random(0)))
        with pytest.raises(KeyError):
            store.trace("caseX", cap, optimize=True)

    def test_columnar_view(self):
        store = GeneratedTraceStore()
        trace = generate_trace(random.Random(1))
        cap = store.add("caseY", trace)
        columnar = store.columnar("caseY", cap)
        assert columnar.to_buffer().digest() == trace.digest()


class TestRunVerification:
    def test_small_sweep_passes(self):
        summary = run_verification(seed=0, cases=20)
        assert summary.ok, summary.describe()
        assert summary.evaluated == 20
        assert summary.analyses > 20 * len(DIFF_METHODS)
        assert "PASS" in summary.describe()

    def test_parallel_sweep_matches_serial(self):
        """Cases fan out through the engine pool like experiment grids."""
        serial = run_verification(seed=3, cases=10, jobs=1)
        parallel = run_verification(seed=3, cases=10, jobs=2)
        assert serial.ok and parallel.ok
        assert serial.analyses == parallel.analyses

    def test_progress_callback(self):
        seen = []
        run_verification(seed=0, cases=5, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(i, 5) for i in range(1, 6)]


def _syscall_dest_trace():
    """Optimistic-syscall regression shape: a syscall with a destination
    must not kill the prior value of that register."""
    builder = TraceBuilder()
    from repro.isa.opclasses import OpClass

    builder.ialu(5)
    builder.ialu(3, 5, 4)
    builder.op(OpClass.SYSCALL, (5,))  # syscall writing r5
    builder.ialu(1, 5, 1)
    return builder.build()


class TestKnownRegressions:
    def test_optimistic_syscall_with_dests(self):
        """The twopass bug this harness caught on its first 500-case run."""
        config = AnalysisConfig(
            syscall_policy=OPTIMISTIC,
            rename_registers=True,
            rename_stack=True,
            rename_data=True,
        )
        assert verify_case(_syscall_dest_trace(), config) == []


class TestMutations:
    @pytest.mark.parametrize(
        "mutation", ["kernel-load-skew", "legacy-war-loss"]
    )
    def test_mutant_caught_shrunk_and_replayable(self, mutation, tmp_path):
        artifact_dir = str(tmp_path / "artifacts")
        with apply_mutation(mutation):
            summary = run_verification(
                seed=0, cases=60, artifact_dir=artifact_dir, max_failures=3
            )
            assert not summary.ok, f"harness missed mutation {mutation}"
            for failure in summary.failures:
                assert failure.records <= 20  # acceptance bound on shrunk size
                assert failure.artifacts
        # outside the mutation context the artifacts replay clean
        from repro.verify.artifacts import replay_artifact

        for failure in summary.failures:
            assert replay_artifact(failure.artifacts[0]) == []

    def test_mutant_artifact_still_fails_under_mutation(self, tmp_path):
        artifact_dir = str(tmp_path / "artifacts")
        with apply_mutation("kernel-load-skew"):
            summary = run_verification(
                seed=0, cases=60, artifact_dir=artifact_dir, max_failures=1
            )
            from repro.verify.artifacts import replay_artifact

            failure = summary.failures[0]
            assert replay_artifact(failure.artifacts[0])  # still failing inside

    def test_vkernel_batch_skew_caught_by_backend_focus(self, tmp_path):
        """The cross-backend differential must catch an off-by-one in the
        vectorized backend's frontier batch seeding. Meaningless without
        NumPy — the mutated seeding never runs when the backend falls
        back to the python kernels."""
        from repro.core import vkernels

        if not vkernels.available():
            pytest.skip("NumPy is not installed")
        artifact_dir = str(tmp_path / "artifacts")
        with apply_mutation("vkernel-batch-skew"):
            summary = run_verification(
                seed=0,
                cases=60,
                artifact_dir=artifact_dir,
                max_failures=3,
                focus="backend",
            )
            assert not summary.ok, "harness missed mutation vkernel-batch-skew"
            for failure in summary.failures:
                assert failure.artifacts
        from repro.verify.artifacts import replay_artifact

        for failure in summary.failures:
            assert replay_artifact(failure.artifacts[0]) == []

    def test_vkernel_batch_skew_invisible_to_python_backends(self):
        """The mutation lives entirely inside the vectorized backend, so
        the default (python-only) plan must keep passing under it."""
        case = generate_case(99, 3)
        with apply_mutation("vkernel-batch-skew"):
            assert verify_case(case.trace, case.config) == []

    def test_unknown_mutation(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            with apply_mutation("nope"):
                pass

    def test_mutation_restores_original(self):
        case = generate_case(99, 2)
        before = verify_case(case.trace, case.config)
        with apply_mutation("kernel-load-skew"):
            pass
        assert verify_case(case.trace, case.config) == before == []
