"""Deterministic case generation and counterexample shrinking."""

import random

from repro.isa.opclasses import OpClass
from repro.trace.buffer import TraceBuffer
from repro.trace.record import FLAG_CONDITIONAL
from repro.verify.generate import (
    MAX_CASE_RECORDS,
    case_seed,
    generate_case,
    generate_trace,
    sample_config,
    shrink_trace,
)


class TestDeterminism:
    def test_same_seed_same_case(self):
        first = generate_case(7, 3)
        second = generate_case(7, 3)
        assert first.trace.digest() == second.trace.digest()
        assert first.config.digest() == second.config.digest()
        assert first.seed == second.seed

    def test_case_seeds_are_mixed(self):
        """Nearby (root, index) pairs give unrelated 64-bit seeds."""
        seeds = {case_seed(root, index) for root in range(4) for index in range(16)}
        assert len(seeds) == 64

    def test_index_changes_case(self):
        assert (
            generate_case(0, 0).trace.digest() != generate_case(0, 1).trace.digest()
        )

    def test_case_name(self):
        assert generate_case(0, 42).name == "case00042"


class TestTraceCoverage:
    """Over a modest case budget the generator exercises every record
    shape the analyzers distinguish — the whole point of the tiny pools."""

    def collect(self, cases=60):
        records = []
        for index in range(cases):
            records.extend(generate_case(0, index).trace)
        return records

    def test_trace_lengths_bounded(self):
        for index in range(60):
            assert 1 <= len(generate_case(0, index).trace) <= MAX_CASE_RECORDS

    def test_all_record_shapes_appear(self):
        records = self.collect()
        classes = {record[0] for record in records}
        for opclass in (
            OpClass.IALU,
            OpClass.LOAD,
            OpClass.STORE,
            OpClass.SYSCALL,
            OpClass.BRANCH,
            OpClass.JUMP,
            OpClass.NOP,
        ):
            assert int(opclass) in classes, f"no {opclass.name} generated"

    def test_read_then_write_and_multi_dest(self):
        records = self.collect()
        assert any(
            set(record[2]) & set(record[1]) for record in records
        ), "no same-location read-then-write generated"
        assert any(len(record[2]) > 1 for record in records), "no multi-dest op"

    def test_syscalls_with_and_without_operands(self):
        syscalls = [r for r in self.collect() if r[0] == int(OpClass.SYSCALL)]
        assert any(r[2] for r in syscalls), "no syscall with destinations"
        assert any(not r[1] and not r[2] for r in syscalls), "no bare syscall"

    def test_branches_both_directions(self):
        branches = [
            r
            for r in self.collect()
            if r[0] == int(OpClass.BRANCH) and r[3] & FLAG_CONDITIONAL
        ]
        from repro.trace.record import FLAG_TAKEN

        assert any(r[3] & FLAG_TAKEN for r in branches)
        assert any(not (r[3] & FLAG_TAKEN) for r in branches)

    def test_both_segments_touched(self):
        from repro.isa.locations import is_memory_location
        from repro.trace.segments import DEFAULT_SEGMENTS

        segments = {
            DEFAULT_SEGMENTS.classify(location)
            for record in self.collect()
            if record[0] in (int(OpClass.LOAD), int(OpClass.STORE))
            for location in (*record[1], *record[2])
            if is_memory_location(location)
        }
        assert {"data", "stack"} <= segments


class TestConfigCoverage:
    def sample(self, count=200):
        return [sample_config(random.Random(seed)) for seed in range(count)]

    def test_both_syscall_policies(self):
        policies = {config.syscall_policy for config in self.sample()}
        assert policies == {"conservative", "optimistic"}

    def test_window_sizes_vary(self):
        windows = {config.window_size for config in self.sample()}
        assert None in windows and len(windows) > 3

    def test_resources_sometimes(self):
        configs = self.sample()
        assert any(config.resources is not None for config in configs)
        assert any(config.resources is None for config in configs)

    def test_resources_can_be_disabled(self):
        configs = [
            sample_config(random.Random(seed), allow_resources=False)
            for seed in range(100)
        ]
        assert all(config.resources is None for config in configs)

    def test_predictors_vary(self):
        predictors = {config.branch_predictor for config in self.sample()}
        assert None in predictors and len(predictors) > 2


class TestShrink:
    def test_shrinks_to_single_guilty_record(self):
        """A predicate keyed on one record shrinks to exactly that record."""
        syscall = int(OpClass.SYSCALL)
        trace = next(
            trace
            for trace in (generate_trace(random.Random(seed)) for seed in range(50))
            if any(r[0] == syscall for r in trace)
        )

        def has_syscall(candidate):
            return any(r[0] == syscall for r in candidate)

        shrunk = shrink_trace(trace, has_syscall)
        assert len(shrunk) == 1
        assert next(iter(shrunk))[0] == syscall

    def test_preserves_predicate(self):
        trace = generate_trace(random.Random(9))
        threshold = max(1, len(trace) // 2)

        def long_enough(candidate):
            return len(candidate) >= threshold

        shrunk = shrink_trace(trace, long_enough)
        assert long_enough(shrunk)
        assert len(shrunk) == threshold  # greedy deletion reaches the floor

    def test_never_grows(self):
        trace = generate_trace(random.Random(3))
        shrunk = shrink_trace(trace, lambda candidate: True)
        assert len(shrunk) == 1  # everything deletable

    def test_unshrinkable_comes_back_unchanged(self):
        trace = generate_trace(random.Random(4))
        full = trace.digest()

        def only_whole(candidate):
            return candidate.digest() == full

        assert shrink_trace(trace, only_whole).digest() == full

    def test_min_records_respected(self):
        trace = generate_trace(random.Random(6))
        floor = min(3, len(trace))
        shrunk = shrink_trace(trace, lambda candidate: True, min_records=floor)
        assert len(shrunk) == floor

    def test_result_is_subsequence(self):
        trace = generate_trace(random.Random(8))
        kept = list(shrink_trace(trace, lambda c: len(c) % 2 == 1))
        records = list(trace)
        position = 0
        for record in kept:
            position = records.index(record, position) + 1  # raises if not in order

    def test_result_type(self):
        trace = generate_trace(random.Random(2))
        assert isinstance(shrink_trace(trace, lambda c: True), TraceBuffer)
