"""Counterexample artifacts: persist, load, digest-check, replay."""

import json
import os

import pytest

from repro.verify.artifacts import (
    ARTIFACT_FORMAT,
    load_artifact,
    persist_failure,
    replay_artifact,
)
from repro.verify.generate import generate_case


@pytest.fixture
def case():
    return generate_case(0, 17)


@pytest.fixture
def persisted(case, tmp_path):
    return persist_failure(
        str(tmp_path), case, case.trace, ["example failure message"]
    )


class TestPersist:
    def test_writes_both_halves(self, persisted):
        trace_path, meta_path = persisted
        assert trace_path.endswith(".pgt2") and os.path.exists(trace_path)
        assert meta_path.endswith(".json") and os.path.exists(meta_path)

    def test_stem_names_seed_and_case(self, case, persisted):
        stem = os.path.basename(persisted[0])
        assert f"{case.seed:016x}" in stem
        assert case.name in stem

    def test_sidecar_contents(self, case, persisted):
        with open(persisted[1]) as handle:
            meta = json.load(handle)
        assert meta["format"] == ARTIFACT_FORMAT
        assert meta["seed"] == case.seed
        assert meta["index"] == case.index
        assert meta["records"] == len(case.trace)
        assert meta["trace_digest"] == case.trace.digest()
        assert meta["failures"] == ["example failure message"]
        assert meta["config"] == case.config.canonical()


class TestLoad:
    def test_round_trip_from_either_half(self, case, persisted):
        for path in persisted:
            trace, config, meta = load_artifact(path)
            assert trace.digest() == case.trace.digest()
            assert config.digest() == case.config.digest()
            assert meta["case"] == case.name

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a verify artifact"):
            load_artifact(str(tmp_path / "whatever.txt"))

    def test_tampered_trace_rejected(self, case, persisted, tmp_path):
        other = generate_case(0, 18)
        from repro.trace.io import write_trace_file

        write_trace_file(persisted[0], other.trace)
        with pytest.raises(ValueError, match="digest"):
            load_artifact(persisted[1])


class TestReplay:
    def test_clean_case_replays_clean(self, persisted):
        # the fixture case passes verification (the failure message above
        # is fabricated), so replay reports the bug gone
        assert replay_artifact(persisted[1]) == []
