"""The explicit-DDG oracle agrees with the reference analyzer.

The oracle is the slow, obviously-correct end of the differential chain:
it builds the dependency graph explicitly and takes a longest path, with
no live well, no streaming state, and no shared code with the production
analyzers. These tests pin it against the reference implementation on
hand-built paper traces and on generated adversarial traces across a
config grid.
"""

import pytest

from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    OPTIMISTIC,
    AnalysisConfig,
)
from repro.core.latency import LatencyTable
from repro.core.reference import reference_analyze
from repro.core.resources import ResourceModel
from repro.trace.synthetic import TraceBuilder
from repro.verify.compare import ORACLE_FIELDS, diff_results
from repro.verify.generate import generate_trace
from repro.verify.oracle import build_oracle_ddg, oracle_analyze

import random

DATA = 0x1000


def assert_matches_reference(trace, config):
    expected = reference_analyze(trace, config)
    actual = oracle_analyze(trace, config)
    mismatches = diff_results("reference", expected, "oracle", actual)
    assert not mismatches, "\n".join(mismatches)


CONFIG_GRID = [
    pytest.param(AnalysisConfig(), id="default"),
    pytest.param(AnalysisConfig(latency=LatencyTable.unit()), id="unit-latency"),
    pytest.param(AnalysisConfig(syscall_policy=OPTIMISTIC), id="optimistic"),
    pytest.param(
        AnalysisConfig(rename_registers=True, rename_stack=True, rename_data=True),
        id="all-renamed",
    ),
    pytest.param(
        AnalysisConfig(rename_registers=False, rename_stack=False, rename_data=False),
        id="no-renaming",
    ),
    pytest.param(AnalysisConfig(window_size=2), id="window-2"),
    pytest.param(
        AnalysisConfig(window_size=4, branch_predictor="gshare"), id="predicted"
    ),
    pytest.param(
        AnalysisConfig(memory_disambiguation=CONSERVATIVE_DISAMBIGUATION),
        id="conservative-mem",
    ),
]


@pytest.fixture
def mixed_trace():
    """Loads, ALU chain, a store, a syscall, a branch — one of everything."""
    builder = TraceBuilder()
    builder.load(1, DATA + 0)
    builder.load(2, DATA + 1)
    builder.ialu(3, 1, 2)
    builder.store(3, DATA + 2)
    builder.syscall()
    builder.load(4, DATA + 2)
    builder.branch(4, taken=True, pc=7)
    builder.ialu(3, 3)  # read-then-write of r3
    return builder.build()


class TestAgainstReference:
    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_mixed_trace(self, mixed_trace, config):
        assert_matches_reference(mixed_trace, config)

    @pytest.mark.parametrize("config", CONFIG_GRID)
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_traces(self, seed, config):
        trace = generate_trace(random.Random(seed))
        assert_matches_reference(trace, config)

    def test_empty_trace(self):
        builder = TraceBuilder()
        builder.op(11)  # a lone NOP: zero placed operations
        assert_matches_reference(builder.build(), AnalysisConfig())


class TestOracleContract:
    def test_rejects_resource_models(self, mixed_trace):
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        with pytest.raises(ValueError, match="resource"):
            oracle_analyze(mixed_trace, config)

    def test_rejects_oversized_traces(self):
        builder = TraceBuilder()
        for _ in range(10):
            builder.ialu(1, 1)
        with pytest.raises(ValueError, match="max_records"):
            build_oracle_ddg(builder.build(), AnalysisConfig(), max_records=5)

    def test_sentinel_fields(self, mixed_trace):
        result = oracle_analyze(mixed_trace, AnalysisConfig())
        assert result.firewalls == -1
        assert result.peak_live_well == -1
        assert result.lifetimes is None

    def test_defined_fields_are_complete(self, mixed_trace):
        result = oracle_analyze(mixed_trace, AnalysisConfig())
        for name in ORACLE_FIELDS:
            assert hasattr(result, name)

    def test_placed_records_in_trace_order(self, mixed_trace):
        ddg = build_oracle_ddg(mixed_trace, AnalysisConfig())
        indices = [index for index, _, _ in ddg.placed_records()]
        assert indices == sorted(indices)

    def test_syscall_firewalls_partition_levels(self, mixed_trace):
        """The structural property the harness's firewall check relies on."""
        from repro.verify.oracle import KIND_SYSCALL

        ddg = build_oracle_ddg(
            mixed_trace, AnalysisConfig(syscall_policy=CONSERVATIVE)
        )
        placed = ddg.placed_records()
        positions = [i for i, (_, kind, _) in enumerate(placed) if kind == KIND_SYSCALL]
        assert positions  # the fixture has a syscall
        for position in positions:
            level = placed[position][2]
            assert all(lvl < level for _, _, lvl in placed[:position])
            assert all(lvl > level for _, _, lvl in placed[position + 1:])
