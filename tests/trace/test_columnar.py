"""ColumnarTrace: construction equivalence, digests, shared memory."""

import pytest

from repro.isa.opclasses import OpClass
from repro.trace.buffer import TraceBuffer
from repro.trace.columnar import ColumnarTrace, SharedTraceError
from repro.trace.io import write_trace_file
from repro.trace.record import FLAG_CONDITIONAL
from repro.trace.segments import SegmentMap
from repro.trace.synthetic import TraceBuilder, random_trace


@pytest.fixture(scope="module")
def buffer():
    return random_trace(seed=7, length=500, memory_words=32, syscall_fraction=0.02)


@pytest.fixture(scope="module")
def columnar(buffer):
    return ColumnarTrace.from_buffer(buffer)


class TestConstruction:
    def test_from_buffer_reproduces_every_record(self, buffer, columnar):
        assert len(columnar) == len(buffer)
        assert list(columnar) == list(buffer.records)

    def test_getitem_matches_records(self, buffer, columnar):
        for index in (0, 1, len(buffer) // 2, len(buffer) - 1):
            assert columnar[index] == buffer.records[index]
        assert columnar[-1] == buffer.records[-1]

    def test_from_file_matches_from_buffer(self, buffer, tmp_path):
        path = tmp_path / "trace.pgt"
        write_trace_file(path, buffer)
        decoded = ColumnarTrace.from_file(path)
        assert list(decoded) == list(buffer.records)
        assert decoded.segments == buffer.segments

    def test_empty_trace(self):
        empty = ColumnarTrace.from_buffer(TraceBuilder().build())
        assert len(empty) == 0
        assert list(empty) == []
        assert empty.census() == (0, 0)

    def test_segments_carry_over(self):
        segments = SegmentMap(data_base=16, stack_floor=48, stack_top=64)
        builder = TraceBuilder(segments)
        builder.ialu(1)
        trace = ColumnarTrace.from_buffer(builder.build())
        assert trace.segments == segments


class TestDigest:
    def test_digest_matches_buffer(self, buffer, columnar):
        assert columnar.digest() == buffer.digest()

    def test_digest_matches_file_header(self, buffer, tmp_path):
        path = tmp_path / "trace.pgt"
        header_digest = write_trace_file(path, buffer)
        assert ColumnarTrace.from_file(path).digest() == header_digest

    def test_digest_computed_lazily_when_buffer_has_none(self, buffer):
        fresh = TraceBuffer(list(buffer.records), buffer.segments)
        trace = ColumnarTrace.from_buffer(fresh)
        assert trace.digest() == buffer.digest()


class TestToBuffer:
    def test_round_trip(self, columnar, buffer):
        assert columnar.to_buffer().records == buffer.records

    def test_memoized(self, columnar):
        assert columnar.to_buffer() is columnar.to_buffer()

    def test_from_buffer_round_trips_for_free(self, buffer):
        assert ColumnarTrace.from_buffer(buffer).to_buffer() is buffer

    def test_decoded_trace_buffer_keeps_digest(self, buffer, tmp_path):
        path = tmp_path / "trace.pgt"
        write_trace_file(path, buffer)
        decoded = ColumnarTrace.from_file(path)
        assert decoded.to_buffer().digest() == buffer.digest()


class TestCensus:
    def test_counts_syscalls_and_conditional_branches(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.syscall()
        builder.branch(1, taken=True)
        builder.branch(1, taken=False)
        builder.jump()  # unconditional: not a conditional branch
        builder.syscall()
        trace = ColumnarTrace.from_buffer(builder.build())
        assert trace.census() == (2, 2)

    def test_matches_record_scan(self, buffer, columnar):
        syscalls = sum(1 for r in buffer.records if r[0] == int(OpClass.SYSCALL))
        branches = sum(
            1
            for r in buffer.records
            if r[0] == int(OpClass.BRANCH) and r[3] & FLAG_CONDITIONAL
        )
        assert columnar.census() == (syscalls, branches)


class TestSharedMemory:
    def test_round_trip(self, buffer, columnar):
        shm = columnar.to_shared_memory()
        try:
            attached = ColumnarTrace.from_shared_memory(shm.name)
            try:
                assert list(attached) == list(buffer.records)
                assert attached.digest() == buffer.digest()
                assert attached.segments == buffer.segments
            finally:
                attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_close_releases_views_and_is_idempotent(self, columnar):
        shm = columnar.to_shared_memory()
        try:
            attached = ColumnarTrace.from_shared_memory(shm.name)
            attached.close()
            attached.close()  # second close is a no-op
        finally:
            shm.close()
            shm.unlink()

    def test_close_is_noop_for_local_traces(self, columnar):
        columnar.close()
        assert len(columnar)  # columns still usable

    def test_bad_magic_rejected(self, columnar):
        shm = columnar.to_shared_memory()
        try:
            shm.buf[:4] = b"XXXX"
            with pytest.raises(SharedTraceError, match="bad magic"):
                ColumnarTrace.from_shared_memory(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_truncated_block_rejected(self, columnar):
        from multiprocessing import shared_memory

        donor = columnar.to_shared_memory()
        try:
            # Copy only the header into a smaller block: the record counts
            # promise far more column data than the block holds.
            header = bytes(donor.buf[:72])
            short = shared_memory.SharedMemory(create=True, size=128)
            try:
                short.buf[:72] = header
                with pytest.raises(SharedTraceError, match="too small"):
                    ColumnarTrace.from_shared_memory(short.name)
            finally:
                short.close()
                short.unlink()
        finally:
            donor.close()
            donor.unlink()

    def test_nbytes_matches_block_size(self, columnar):
        shm = columnar.to_shared_memory()
        try:
            # The OS may round the segment up to a page; never smaller.
            assert len(shm.buf) >= columnar.nbytes()
        finally:
            shm.close()
            shm.unlink()

    def test_empty_trace_round_trips(self):
        empty = ColumnarTrace.from_buffer(TraceBuilder().build())
        shm = empty.to_shared_memory()
        try:
            attached = ColumnarTrace.from_shared_memory(shm.name)
            try:
                assert len(attached) == 0
                assert attached.digest() == empty.digest()
            finally:
                attached.close()
        finally:
            shm.close()
            shm.unlink()
