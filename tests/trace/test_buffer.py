"""Trace buffer container."""

from repro.trace.buffer import TraceBuffer
from repro.trace.record import make_record
from repro.trace.segments import SegmentMap


def records(n):
    return [make_record(0, (1,), (2,), aux=i) for i in range(n)]


class TestBuffer:
    def test_empty(self):
        buffer = TraceBuffer()
        assert len(buffer) == 0
        assert list(buffer) == []

    def test_append_and_iterate(self):
        buffer = TraceBuffer()
        for record in records(3):
            buffer.append(record)
        assert len(buffer) == 3
        assert [r[4] for r in buffer] == [0, 1, 2]

    def test_extend(self):
        buffer = TraceBuffer()
        buffer.extend(records(4))
        assert len(buffer) == 4

    def test_indexing(self):
        buffer = TraceBuffer(records(5))
        assert buffer[2][4] == 2
        assert len(buffer[1:3]) == 2

    def test_head_copies_prefix_and_segments(self):
        segments = SegmentMap(stack_floor=123)
        buffer = TraceBuffer(records(10), segments)
        head = buffer.head(4)
        assert len(head) == 4
        assert head.segments == segments
        assert head[0] == buffer[0]

    def test_head_larger_than_buffer(self):
        buffer = TraceBuffer(records(2))
        assert len(buffer.head(10)) == 2
