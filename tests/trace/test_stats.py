"""Trace statistics."""

from repro.isa.opclasses import OpClass
from repro.trace.stats import compute_stats
from repro.trace.synthetic import TraceBuilder


def build_mixed():
    builder = TraceBuilder()
    builder.ialu(1, 2)
    builder.fop(OpClass.FMUL, 33, 34, 35)
    builder.load(1, 0x1000)
    builder.store(1, 0x1001)
    builder.branch(1, taken=True, pc=0)
    builder.branch(1, taken=False, pc=1)
    builder.jump(pc=2)
    builder.syscall()
    return builder.build()


class TestStats:
    def test_total_counts_everything(self):
        assert compute_stats(build_mixed()).total == 8

    def test_placed_excludes_control(self):
        stats = compute_stats(build_mixed())
        assert stats.placed == 5  # ialu, fmul, load, store, syscall

    def test_branch_counters(self):
        stats = compute_stats(build_mixed())
        assert stats.branches == 3  # 2 conditional + 1 jump
        assert stats.conditional_branches == 2
        assert stats.taken_branches == 1

    def test_memory_counters(self):
        stats = compute_stats(build_mixed())
        assert stats.loads == 1
        assert stats.stores == 1

    def test_fp_counter(self):
        assert compute_stats(build_mixed()).fp_operations == 1

    def test_syscall_interval(self):
        stats = compute_stats(build_mixed())
        assert stats.syscalls == 1
        assert stats.syscall_interval == 8.0

    def test_syscall_interval_infinite_without_syscalls(self):
        builder = TraceBuilder()
        builder.ialu(1)
        assert compute_stats(builder.build()).syscall_interval == float("inf")

    def test_by_class_names(self):
        stats = compute_stats(build_mixed())
        assert stats.by_class["IALU"] == 1
        assert stats.by_class["BRANCH"] == 2
