"""Synthetic trace generators."""

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.synthetic import (
    TraceBuilder,
    independent_ops,
    random_trace,
    serial_chain,
)


class TestBuilder:
    def test_load_encodes_memory_address(self):
        trace = TraceBuilder().load(1, 0x40, base=5).build()
        assert trace[0][1] == (5, MEM_BASE + 0x40)

    def test_store_destination(self):
        trace = TraceBuilder().store(1, 0x40).build()
        assert trace[0][2] == (MEM_BASE + 0x40,)

    def test_branch_flags(self):
        trace = TraceBuilder().branch(1, taken=True, pc=9).build()
        assert trace[0][3] == FLAG_CONDITIONAL | FLAG_TAKEN
        assert trace[0][4] == 9

    def test_chaining_returns_builder(self):
        trace = TraceBuilder().ialu(1).ialu(2).syscall().build()
        assert len(trace) == 3


class TestGenerators:
    def test_serial_chain_has_unit_parallelism(self):
        result = analyze(serial_chain(50), AnalysisConfig(latency=LatencyTable.unit()))
        assert result.critical_path_length == 50
        assert result.available_parallelism == 1.0

    def test_independent_ops_fully_parallel(self):
        result = analyze(
            independent_ops(64), AnalysisConfig(latency=LatencyTable.unit())
        )
        assert result.critical_path_length == 1
        assert result.available_parallelism == 64.0

    def test_random_trace_deterministic(self):
        assert random_trace(7, 100).records == random_trace(7, 100).records

    def test_random_trace_different_seeds_differ(self):
        assert random_trace(1, 200).records != random_trace(2, 200).records

    def test_random_trace_length(self):
        assert len(random_trace(3, 123)) == 123

    def test_random_trace_touches_both_memory_segments(self):
        trace = random_trace(4, 2000)
        segments = trace.segments
        kinds = set()
        for record in trace:
            for loc in record[1] + record[2]:
                if loc >= MEM_BASE:
                    kinds.add(segments.classify(loc))
        assert kinds == {"stack", "data"}

    def test_random_trace_contains_syscalls_and_branches(self):
        trace = random_trace(5, 3000)
        classes = {record[0] for record in trace}
        assert int(OpClass.SYSCALL) in classes
        assert int(OpClass.BRANCH) in classes
