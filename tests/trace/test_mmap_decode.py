"""Zero-copy PGT2 decode: mmap == buffered, byte for byte, or a loud error.

``ColumnarTrace.from_pgt2_mmap`` decodes through a read-only memory map
and (when NumPy is present) vectorized u32 column gathers instead of the
per-record python scan. The decode path is not allowed to be a semantics
knob any more than the analysis backend is: every column must come out
identical to the buffered reference decode on every workload, and a
truncated or corrupted file must raise :class:`TraceFormatError` before
any partial trace escapes.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.trace import io as trace_io
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import TraceFormatError, write_trace_file
from repro.trace.synthetic import TraceBuilder, random_trace
from repro.workloads.suite import all_workloads

COLUMNS = (
    "opclass",
    "flags",
    "aux",
    "src_offsets",
    "src_values",
    "dest_offsets",
    "dest_values",
)


def assert_same_columns(left: ColumnarTrace, right: ColumnarTrace):
    for name in COLUMNS:
        assert bytes(memoryview(getattr(left, name))) == bytes(
            memoryview(getattr(right, name))
        ), name
    assert left.segments == right.segments
    assert left.digest() == right.digest()


def write_tmp(tmp_path, trace, name="t.pgt"):
    path = tmp_path / name
    write_trace_file(path, trace)
    return path


class TestMmapMatchesBuffered:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_traces(self, tmp_path, seed):
        trace = random_trace(seed=seed, length=500, syscall_fraction=0.05)
        path = write_tmp(tmp_path, trace, f"r{seed}.pgt")
        assert_same_columns(
            ColumnarTrace.from_pgt2_mmap(path), ColumnarTrace.from_file(path)
        )

    def test_every_suite_workload(self, tmp_path, workload_traces):
        """The acceptance property: mmap decode equals buffered decode
        byte-for-byte on every suite workload."""
        for name, trace in workload_traces.items():
            path = write_tmp(tmp_path, trace, f"{name}.pgt")
            assert_same_columns(
                ColumnarTrace.from_pgt2_mmap(path), ColumnarTrace.from_file(path)
            )

    def test_empty_trace(self, tmp_path):
        path = write_tmp(tmp_path, TraceBuilder().build())
        trace = ColumnarTrace.from_pgt2_mmap(path)
        assert len(trace) == 0
        assert_same_columns(trace, ColumnarTrace.from_file(path))

    def test_decoded_trace_analyzes_identically(self, tmp_path):
        buffer = random_trace(seed=9, length=400, syscall_fraction=0.03)
        path = write_tmp(tmp_path, buffer)
        via_mmap = analyze(ColumnarTrace.from_pgt2_mmap(path), AnalysisConfig())
        via_file = analyze(ColumnarTrace.from_file(path), AnalysisConfig())
        assert via_mmap.critical_path_length == via_file.critical_path_length
        assert via_mmap.placed_operations == via_file.placed_operations

    def test_python_fallback_decode_identical(self, tmp_path, monkeypatch):
        """With NumPy masked out, scan_columns_fast degrades to the pure
        python reference scan — same columns, same digest check."""
        trace = random_trace(seed=4, length=300, syscall_fraction=0.05)
        path = write_tmp(tmp_path, trace)
        with_numpy = ColumnarTrace.from_pgt2_mmap(path)
        monkeypatch.setattr(trace_io, "_np", None)
        assert_same_columns(ColumnarTrace.from_pgt2_mmap(path), with_numpy)
        assert_same_columns(ColumnarTrace.from_file(path), with_numpy)


class TestLoudErrors:
    """No partial traces: a bad file raises before any columns escape."""

    @pytest.fixture
    def good_file(self, tmp_path):
        trace = random_trace(seed=5, length=200, syscall_fraction=0.05)
        return write_tmp(tmp_path, trace)

    def test_truncated_file(self, good_file):
        data = good_file.read_bytes()
        good_file.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_pgt2_mmap(good_file)

    def test_corrupt_payload_fails_digest(self, good_file):
        data = bytearray(good_file.read_bytes())
        data[len(data) // 2] ^= 0xFF
        good_file.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="stale or corrupted"):
            ColumnarTrace.from_pgt2_mmap(good_file)

    def test_trailing_garbage_fails_digest(self, good_file):
        good_file.write_bytes(good_file.read_bytes() + b"\x00" * 16)
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_pgt2_mmap(good_file)

    def test_bad_magic(self, good_file):
        data = bytearray(good_file.read_bytes())
        data[:4] = b"NOPE"
        good_file.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad magic"):
            ColumnarTrace.from_pgt2_mmap(good_file)

    def test_corrupt_python_fallback_also_loud(self, good_file, monkeypatch):
        data = bytearray(good_file.read_bytes())
        data[len(data) // 2] ^= 0xFF
        good_file.write_bytes(bytes(data))
        monkeypatch.setattr(trace_io, "_np", None)
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_pgt2_mmap(good_file)


class TestScanColumnsFast:
    def test_matches_reference_scan(self):
        import io as stdio

        trace = random_trace(seed=6, length=250, syscall_fraction=0.05)
        stream = stdio.BytesIO()
        trace_io.write_trace(stream, trace.records, trace.segments, len(trace))
        payload = stream.getvalue()[trace_io._HEADER.size :]
        fast = trace_io.scan_columns_fast(payload, len(trace))
        slow = trace_io.scan_columns(payload, len(trace))
        assert fast == slow

    def test_heads_walk_then_gather(self):
        import io as stdio

        if trace_io._np is None:
            pytest.skip("NumPy is not installed")
        trace = random_trace(seed=7, length=120, syscall_fraction=0.05)
        stream = stdio.BytesIO()
        trace_io.write_trace(stream, trace.records, trace.segments, len(trace))
        payload = stream.getvalue()[trace_io._HEADER.size :]
        heads = trace_io.walk_record_heads(payload, len(trace))
        assert heads[0] == 0 and heads[-1] == len(payload)
        columns = trace_io.gather_columns(payload, heads, len(trace))
        assert columns == trace_io.scan_columns(payload, len(trace))
