"""Bounded-memory PGT2 access: manifests, segment decode, chunk streaming."""

import json
import os

import pytest

from repro.isa.opclasses import OpClass
from repro.trace.chunked import (
    build_manifest,
    decode_prefix,
    decode_segment,
    decode_slice,
    iter_chunks,
    load_manifest,
    manifest_path,
    segment_manifest,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import TraceFormatError, read_trace_digest, write_trace_file
from repro.trace.synthetic import TraceBuilder, random_trace

_SYSCALL = int(OpClass.SYSCALL)


@pytest.fixture
def trace():
    return random_trace(7, 200, syscall_fraction=0.05)


@pytest.fixture
def trace_path(tmp_path, trace):
    path = str(tmp_path / "t.pgt2")
    write_trace_file(path, trace)
    return path


class TestManifest:
    def test_segments_tile_the_trace(self, trace_path, trace):
        manifest = build_manifest(trace_path, shard_size=64)
        assert manifest.count == len(trace)
        assert [entry.count for entry in manifest.entries] == [64, 64, 64, 8]
        assert [entry.start for entry in manifest.entries] == [0, 64, 128, 192]
        ends = [entry.offset + entry.length for entry in manifest.entries]
        assert ends[:-1] == [entry.offset for entry in manifest.entries[1:]]
        assert ends[-1] == os.path.getsize(trace_path)

    def test_first_syscall_and_prefix_match_records(self, trace_path, trace):
        manifest = build_manifest(trace_path, shard_size=64)
        records = list(trace)
        for entry in manifest.entries:
            segment = records[entry.start : entry.start + entry.count]
            expected = next(
                (
                    entry.start + position
                    for position, record in enumerate(segment)
                    if record[0] == _SYSCALL
                ),
                -1,
            )
            assert entry.first_syscall == expected
            if expected < 0:
                assert entry.prefix_count == 0 and entry.prefix_length == 0
            else:
                assert entry.prefix_count == expected - entry.start + 1

    def test_segment_digest_is_standalone_trace_digest(
        self, tmp_path, trace_path, trace
    ):
        manifest = build_manifest(trace_path, shard_size=64)
        entry = manifest.entries[1]
        standalone = str(tmp_path / "seg.pgt2")
        sub = TraceBuffer(
            list(trace)[entry.start : entry.start + entry.count], trace.segments
        )
        write_trace_file(standalone, sub)
        assert read_trace_digest(standalone) == entry.digest
        assert decode_segment(trace_path, manifest, 1).digest() == entry.digest

    def test_round_trips_through_dict(self, trace_path):
        manifest = build_manifest(trace_path, shard_size=64)
        clone = type(manifest).from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert clone == manifest

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.pgt2")
        write_trace_file(path, TraceBuilder().build())
        manifest = build_manifest(path, shard_size=64)
        assert manifest.count == 0
        assert manifest.entries == ()
        assert list(iter_chunks(path, 64)) == []

    def test_rejects_bad_shard_size(self, trace_path):
        with pytest.raises(ValueError, match="shard_size"):
            build_manifest(trace_path, shard_size=0)


class TestSidecar:
    def test_cached_and_reloaded(self, trace_path):
        first = segment_manifest(trace_path, shard_size=64)
        assert os.path.exists(manifest_path(trace_path, 64))
        assert load_manifest(trace_path, 64) == first
        assert segment_manifest(trace_path, shard_size=64) == first

    def test_stale_sidecar_rebuilt_after_rewrite(self, trace_path):
        segment_manifest(trace_path, shard_size=64)
        write_trace_file(trace_path, random_trace(8, 100, syscall_fraction=0.05))
        assert load_manifest(trace_path, 64) is None
        rebuilt = segment_manifest(trace_path, shard_size=64)
        assert rebuilt.count == 100

    def test_garbage_sidecar_is_a_miss(self, trace_path):
        with open(manifest_path(trace_path, 64), "w") as handle:
            handle.write("not json")
        assert load_manifest(trace_path, 64) is None
        assert segment_manifest(trace_path, shard_size=64).count == 200


class TestDecode:
    def test_segments_reassemble_the_trace(self, trace_path, trace):
        manifest = build_manifest(trace_path, shard_size=64)
        records = []
        for entry in manifest.entries:
            records.extend(decode_segment(trace_path, manifest, entry.index).to_buffer())
        assert records == list(trace)

    def test_prefix_is_records_through_first_syscall(self, trace_path, trace):
        manifest = build_manifest(trace_path, shard_size=64)
        entry = next(e for e in manifest.entries if e.first_syscall >= 0)
        prefix = decode_prefix(trace_path, manifest, entry.index)
        assert len(prefix.opclass) == entry.prefix_count
        assert prefix.opclass[-1] == _SYSCALL
        assert list(prefix.to_buffer()) == list(trace)[entry.start : entry.first_syscall + 1]

    def test_prefix_requires_a_syscall(self, tmp_path):
        path = str(tmp_path / "nosys.pgt2")
        write_trace_file(path, random_trace(9, 50, syscall_fraction=0.0))
        manifest = build_manifest(path, shard_size=64)
        with pytest.raises(ValueError, match="no syscall prefix"):
            decode_prefix(path, manifest, 0)

    def test_digest_mismatch_detected(self, trace_path):
        manifest = build_manifest(trace_path, shard_size=64)
        entry = manifest.entries[0]
        with pytest.raises(TraceFormatError, match="digest mismatch"):
            decode_slice(
                trace_path,
                entry.offset,
                entry.length,
                entry.count,
                manifest.segments,
                digest="0" * 64,
            )

    def test_truncated_slice_detected(self, trace_path):
        manifest = build_manifest(trace_path, shard_size=64)
        entry = manifest.entries[-1]
        with pytest.raises(TraceFormatError, match="truncated"):
            decode_slice(
                trace_path,
                entry.offset,
                entry.length + 100,  # runs off the end of the file
                entry.count,
                manifest.segments,
            )


class TestIterChunks:
    @pytest.mark.parametrize("chunk_records", [1, 7, 64, 200, 1000])
    def test_chunks_reassemble_the_trace(self, trace_path, trace, chunk_records):
        records = []
        for chunk in iter_chunks(trace_path, chunk_records):
            assert isinstance(chunk, ColumnarTrace)
            assert len(chunk.opclass) <= chunk_records
            records.extend(chunk.to_buffer())
        assert records == list(trace)

    def test_corrupted_payload_raises_before_last_chunk(self, trace_path):
        size = os.path.getsize(trace_path)
        with open(trace_path, "r+b") as handle:
            handle.seek(size - 3)
            byte = handle.read(1)
            handle.seek(size - 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(TraceFormatError, match="digest mismatch"):
            list(iter_chunks(trace_path, 64))

    def test_truncated_file_raises(self, trace_path):
        size = os.path.getsize(trace_path)
        with open(trace_path, "r+b") as handle:
            handle.truncate(size - 5)
        with pytest.raises(TraceFormatError, match="truncated"):
            list(iter_chunks(trace_path, 64))

    def test_rejects_bad_chunk_size(self, trace_path):
        with pytest.raises(ValueError, match="chunk_records"):
            list(iter_chunks(trace_path, 0))
