"""Binary trace file format."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.buffer import TraceBuffer
from repro.trace.io import (
    TraceFormatError,
    iter_trace,
    read_header,
    read_trace_file,
    write_trace,
    write_trace_file,
)
from repro.trace.record import make_record
from repro.trace.segments import SegmentMap
from repro.trace.synthetic import random_trace


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        trace = random_trace(seed=1, length=200)
        path = tmp_path / "t.pgt"
        write_trace_file(path, trace)
        loaded = read_trace_file(path)
        assert loaded.records == trace.records
        assert loaded.segments == trace.segments

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.pgt"
        write_trace_file(path, TraceBuffer())
        assert read_trace_file(path).records == []

    def test_custom_segments_preserved(self, tmp_path):
        segments = SegmentMap(data_base=16, stack_floor=512, stack_top=1024)
        trace = TraceBuffer([make_record(0, (1,), (2,))], segments)
        path = tmp_path / "seg.pgt"
        write_trace_file(path, trace)
        assert read_trace_file(path).segments == segments

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(0, 150))
    def test_round_trip_property(self, seed, length, tmp_path_factory):
        trace = random_trace(seed=seed, length=length)
        stream = io.BytesIO()
        write_trace(stream, trace.records, trace.segments, len(trace))
        stream.seek(0)
        segments, count = read_header(stream)
        records = list(iter_trace(stream))
        assert count == length
        assert records == trace.records
        assert segments == trace.segments


class TestErrors:
    def test_bad_magic(self):
        stream = io.BytesIO(b"NOPE" + b"\x00" * 20)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_header(stream)

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_header(io.BytesIO(b"PG"))

    def test_truncated_body(self, tmp_path):
        trace = random_trace(seed=2, length=50)
        path = tmp_path / "trunc.pgt"
        write_trace_file(path, trace)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError):
            read_trace_file(path)

    def test_count_mismatch_on_write(self):
        trace = random_trace(seed=3, length=5)
        with pytest.raises(TraceFormatError, match="count mismatch"):
            write_trace(io.BytesIO(), trace.records, trace.segments, 7)
