"""Binary trace file format."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.buffer import TraceBuffer
from repro.trace.io import (
    FORMAT_VERSION,
    LEGACY_MAGIC,
    MAGIC,
    TraceFormatError,
    iter_trace,
    read_header,
    read_trace_digest,
    read_trace_file,
    trace_digest,
    write_trace,
    write_trace_file,
)
from repro.trace.record import make_record
from repro.trace.segments import SegmentMap
from repro.trace.synthetic import random_trace


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        trace = random_trace(seed=1, length=200)
        path = tmp_path / "t.pgt"
        write_trace_file(path, trace)
        loaded = read_trace_file(path)
        assert loaded.records == trace.records
        assert loaded.segments == trace.segments

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.pgt"
        write_trace_file(path, TraceBuffer())
        assert read_trace_file(path).records == []

    def test_custom_segments_preserved(self, tmp_path):
        segments = SegmentMap(data_base=16, stack_floor=512, stack_top=1024)
        trace = TraceBuffer([make_record(0, (1,), (2,))], segments)
        path = tmp_path / "seg.pgt"
        write_trace_file(path, trace)
        assert read_trace_file(path).segments == segments

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(0, 150))
    def test_round_trip_property(self, seed, length, tmp_path_factory):
        trace = random_trace(seed=seed, length=length)
        stream = io.BytesIO()
        write_trace(stream, trace.records, trace.segments, len(trace))
        stream.seek(0)
        segments, count, digest = read_header(stream)
        records = list(iter_trace(stream))
        assert count == length
        assert records == trace.records
        assert segments == trace.segments
        assert digest == trace_digest(trace)


class TestDigest:
    def test_write_returns_header_digest(self, tmp_path):
        trace = random_trace(seed=7, length=120)
        path = tmp_path / "d.pgt"
        written = write_trace_file(path, trace)
        assert written == read_trace_digest(path) == trace.digest()

    def test_digest_distinguishes_content(self):
        base = random_trace(seed=8, length=60)
        other = random_trace(seed=9, length=60)
        assert trace_digest(base) != trace_digest(other)

    def test_digest_covers_segments(self):
        records = random_trace(seed=10, length=40).records
        one = TraceBuffer(records, SegmentMap(data_base=16, stack_floor=512, stack_top=1024))
        two = TraceBuffer(records, SegmentMap(data_base=32, stack_floor=512, stack_top=1024))
        assert trace_digest(one) != trace_digest(two)

    def test_buffer_digest_invalidated_on_append(self):
        trace = random_trace(seed=11, length=30)
        before = trace.digest()
        trace.append(make_record(0, (1,), (2,)))
        assert trace.digest() != before


class TestErrors:
    def test_bad_magic(self):
        stream = io.BytesIO(b"NOPE" + b"\x00" * 60)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_header(stream)

    def test_legacy_format_rejected_loudly(self):
        stream = io.BytesIO(LEGACY_MAGIC + b"\x00" * 60)
        with pytest.raises(TraceFormatError, match="legacy PGT1"):
            read_header(stream)

    def test_future_version_rejected(self):
        raw = bytearray()
        raw += struct.pack(
            "<4sIIIIQ32s", MAGIC, FORMAT_VERSION + 1, 0, 0, 0, 0, b"\x00" * 32
        )
        with pytest.raises(TraceFormatError, match="unsupported trace format version"):
            read_header(io.BytesIO(bytes(raw)))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_header(io.BytesIO(b"PG"))

    def test_truncated_body(self, tmp_path):
        trace = random_trace(seed=2, length=50)
        path = tmp_path / "trunc.pgt"
        write_trace_file(path, trace)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError):
            read_trace_file(path)

    def test_corrupted_record_fails_digest(self, tmp_path):
        trace = random_trace(seed=4, length=80)
        path = tmp_path / "corrupt.pgt"
        write_trace_file(path, trace)
        data = bytearray(path.read_bytes())
        # flip a bit beyond the header, inside some record's aux field
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="digest mismatch"):
            read_trace_file(path)

    def test_count_mismatch_on_write(self):
        trace = random_trace(seed=3, length=5)
        with pytest.raises(TraceFormatError, match="count mismatch"):
            write_trace(io.BytesIO(), trace.records, trace.segments, 7)
