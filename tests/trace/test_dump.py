"""Trace dump utility."""

from repro.trace.dump import dump_text, main
from repro.trace.io import write_trace_file
from repro.trace.synthetic import random_trace


def make_file(tmp_path, seed=1, length=100):
    path = str(tmp_path / "t.pgt")
    write_trace_file(path, random_trace(seed, length))
    return path


class TestDumpText:
    def test_header_and_stats(self, tmp_path):
        path = make_file(tmp_path)
        text = dump_text(path)
        assert "records    : 100" in text
        assert "stack floor" in text
        assert "mix        :" in text

    def test_record_window(self, tmp_path):
        path = make_file(tmp_path)
        text = dump_text(path, start=5, count=3)
        assert "records 5..7" in text
        assert text.count("\n  ") == 3

    def test_window_clamped_to_length(self, tmp_path):
        path = make_file(tmp_path, length=10)
        text = dump_text(path, start=8, count=10)
        assert "       9  " in text


class TestCli:
    def test_main_prints(self, tmp_path, capsys):
        path = make_file(tmp_path)
        assert main([path, "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "records    : 100" in out
        assert "records 0..1" in out
