"""Test package."""
