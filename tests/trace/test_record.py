"""Trace record construction and rendering."""

import pytest

from repro.isa.opclasses import OpClass
from repro.trace.record import (
    FLAG_CONDITIONAL,
    FLAG_TAKEN,
    format_record,
    is_control,
    make_record,
)


class TestMakeRecord:
    def test_fields_in_order(self):
        record = make_record(OpClass.IALU, srcs=(1, 2), dests=(3,), flags=0, aux=5)
        assert record == (int(OpClass.IALU), (1, 2), (3,), 0, 5)

    def test_defaults(self):
        record = make_record(OpClass.NOP)
        assert record == (int(OpClass.NOP), (), (), 0, -1)

    def test_invalid_class_rejected(self):
        with pytest.raises(ValueError):
            make_record(99)

    def test_negative_location_rejected(self):
        with pytest.raises(ValueError):
            make_record(OpClass.IALU, srcs=(-1,))


class TestClassification:
    def test_branch_is_control(self):
        assert is_control(make_record(OpClass.BRANCH))
        assert is_control(make_record(OpClass.JUMP))

    def test_alu_is_not_control(self):
        assert not is_control(make_record(OpClass.IALU))


class TestFormatting:
    def test_basic(self):
        text = format_record(make_record(OpClass.IALU, (8, 9), (10,)))
        assert "IALU" in text
        assert "t0" in text and "t2" in text

    def test_taken_branch_annotated(self):
        record = make_record(
            OpClass.BRANCH, (8,), flags=FLAG_CONDITIONAL | FLAG_TAKEN, aux=3
        )
        text = format_record(record)
        assert "taken" in text
        assert "@3" in text

    def test_not_taken_branch_annotated(self):
        record = make_record(OpClass.BRANCH, (8,), flags=FLAG_CONDITIONAL, aux=0)
        assert "not-taken" in format_record(record)
