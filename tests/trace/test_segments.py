"""Segment classification."""

from repro.isa.layout import STACK_SEGMENT_FLOOR, STACK_TOP_WORDS
from repro.isa.locations import MEM_BASE, memory_location
from repro.trace.segments import (
    DEFAULT_SEGMENTS,
    SEG_DATA,
    SEG_REGISTER,
    SEG_STACK,
    SegmentMap,
)


class TestClassification:
    def test_registers(self):
        assert DEFAULT_SEGMENTS.classify(0) == SEG_REGISTER
        assert DEFAULT_SEGMENTS.classify(63) == SEG_REGISTER

    def test_data_segment(self):
        assert DEFAULT_SEGMENTS.classify(memory_location(0x1000)) == SEG_DATA

    def test_heap_counts_as_data(self):
        heap_addr = STACK_SEGMENT_FLOOR - 1
        assert DEFAULT_SEGMENTS.classify(memory_location(heap_addr)) == SEG_DATA

    def test_stack_segment(self):
        assert DEFAULT_SEGMENTS.classify(memory_location(STACK_SEGMENT_FLOOR)) == SEG_STACK
        assert (
            DEFAULT_SEGMENTS.classify(memory_location(STACK_TOP_WORDS - 1)) == SEG_STACK
        )

    def test_boundary_location_precomputed(self):
        assert DEFAULT_SEGMENTS.stack_floor_location == MEM_BASE + STACK_SEGMENT_FLOOR

    def test_custom_floor(self):
        segments = SegmentMap(stack_floor=100)
        assert segments.classify(memory_location(99)) == SEG_DATA
        assert segments.classify(memory_location(100)) == SEG_STACK
