"""Test package."""
