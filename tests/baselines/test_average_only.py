"""Average-only baseline must agree with Paragraph's critical path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.average_only import average_parallelism
from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.trace.synthetic import random_trace, serial_chain


class TestAgreement:
    CONFIGS = [
        AnalysisConfig(),
        AnalysisConfig(syscall_policy="optimistic"),
        AnalysisConfig.no_renaming(),
        AnalysisConfig.registers_renamed(),
        AnalysisConfig(latency=LatencyTable.unit()),
    ]

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), length=st.integers(0, 250))
    def test_matches_paragraph_on_random_traces(self, seed, length):
        trace = random_trace(seed, length)
        for config in self.CONFIGS:
            full = analyze(trace, config)
            baseline = average_parallelism(trace, config)
            assert baseline.critical_path_length == full.critical_path_length
            assert baseline.placed_operations == full.placed_operations

    def test_serial_chain(self):
        result = average_parallelism(serial_chain(64), AnalysisConfig(latency=LatencyTable.unit()))
        assert result.average_parallelism == 1.0

    def test_empty_trace(self):
        result = average_parallelism([], AnalysisConfig())
        assert result.average_parallelism == 0.0


class TestLimitations:
    def test_window_unsupported(self):
        with pytest.raises(ValueError, match="no window"):
            average_parallelism(serial_chain(3), AnalysisConfig(window_size=4))

    def test_resources_unsupported(self):
        with pytest.raises(ValueError):
            average_parallelism(
                serial_chain(3),
                AnalysisConfig(resources=ResourceModel(universal=2)),
            )
