"""Statement-granularity (Kumar) baseline."""

from repro.baselines.kumar import statement_parallelism
from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.isa.opclasses import OpClass
from repro.lang.compiler import compile_source
from repro.cpu.machine import Machine
from repro.trace.synthetic import TraceBuilder


def run_minic(source):
    machine = Machine(compile_source(source))
    machine.run(max_instructions=200_000)
    return machine.trace


class TestGrouping:
    def trace(self):
        # two statements of three instructions each, fully independent
        builder = TraceBuilder()
        builder.op(OpClass.IALU, (1,), (), aux=0)
        builder.op(OpClass.IALU, (2,), (1,), aux=0)
        builder.op(OpClass.IALU, (3,), (2,), aux=0)
        builder.op(OpClass.IALU, (4,), (), aux=1)
        builder.op(OpClass.IALU, (5,), (4,), aux=1)
        builder.op(OpClass.IALU, (6,), (5,), aux=1)
        return builder.build()

    def test_statements_become_unit_nodes(self):
        result = statement_parallelism(self.trace())
        assert result.statements_placed == 2
        assert result.critical_path_length == 1  # both in level 0
        assert result.average_parallelism == 2.0

    def test_mean_statement_size(self):
        assert statement_parallelism(self.trace()).mean_statement_size == 3.0

    def test_internal_writes_not_inputs(self):
        # statement 1 reads location 1 which statement 0 wrote -> dependency
        builder = TraceBuilder()
        builder.op(OpClass.IALU, (1,), (), aux=0)
        builder.op(OpClass.IALU, (2,), (1,), aux=1)
        result = statement_parallelism(builder.build())
        assert result.critical_path_length == 2

    def test_repeated_statement_id_instances_separate(self):
        # a loop body re-executes the same statement id; consecutive runs
        # are distinct dynamic statement instances only when interrupted
        builder = TraceBuilder()
        builder.op(OpClass.IALU, (1,), (1,), aux=3)
        builder.op(OpClass.IALU, (2,), (2,), aux=4)
        builder.op(OpClass.IALU, (1,), (1,), aux=3)
        result = statement_parallelism(builder.build())
        assert result.statements_placed == 3

    def test_conservative_syscall_firewall(self):
        builder = TraceBuilder()
        builder.op(OpClass.IALU, (1,), (), aux=0)
        builder.syscall()
        builder.op(OpClass.IALU, (2,), (), aux=1)
        conservative = statement_parallelism(builder.build())
        optimistic = statement_parallelism(
            builder.build(), AnalysisConfig(syscall_policy="optimistic")
        )
        assert conservative.critical_path_length == 3
        assert optimistic.critical_path_length == 1


class TestAgainstInstructionLevel:
    def test_statement_ap_below_instruction_op_rate(self):
        # Instruction-level analysis sees parallelism *within* statements;
        # per level it places at least as many operations as statement-level
        # analysis places statement-equivalents.
        trace = run_minic(
            """
            int a[64];
            void main() {
                int i;
                for (i = 0; i < 64; i = i + 1) { a[i] = i * 3 + (i ^ 5); }
                print_int(a[63]);
            }
            """
        )
        instruction = analyze(trace, AnalysisConfig(latency=LatencyTable.unit()))
        statement = statement_parallelism(trace)
        ops_per_level_instruction = instruction.available_parallelism
        ops_per_level_statement = (
            statement.average_parallelism * statement.mean_statement_size
        )
        assert statement.statements_placed > 0
        assert ops_per_level_instruction > 0
        # statement nodes are coarser: fewer schedulable units
        assert statement.statements_placed < instruction.placed_operations
        assert ops_per_level_statement > 0
