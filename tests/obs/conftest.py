"""Every obs test leaves the process-global registry the way it found
it: disabled. Engine helpers (``ExperimentEngine(metrics=True)``) install
a live registry as a side effect, so the reset is unconditional."""

import pytest

from repro.obs import metrics as obs


@pytest.fixture(autouse=True)
def _reset_metrics_state(monkeypatch):
    monkeypatch.delenv(obs.ENV_METRICS, raising=False)
    yield
    obs.disable()
