"""Observability wired through the engine: cross-process merge, per-job
export rows (including retried and quarantined jobs), and the phase-sum
invariant the metrics file promises."""

import json
import os

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.engine import AnalysisJob, ExperimentEngine
from repro.engine.faults import ENV_DIR, ENV_SPEC
from repro.engine.resilience import ENV_MANIFEST_DIR
from repro.harness.runner import TraceStore
from repro.obs import metrics as obs
from repro.obs.export import load_run
from repro.obs.report import render_run_report, report_run

CAP = 1500

WORKLOADS = ("xlispx", "eqntottx")
CONFIGS = (AnalysisConfig(), AnalysisConfig(syscall_policy=OPTIMISTIC))


def grid():
    return [
        AnalysisJob(workload, CAP, config)
        for workload in WORKLOADS
        for config in CONFIGS
    ]


def engine_for(tmp_path, jobs=2, **kwargs):
    kwargs.setdefault("store", TraceStore(str(tmp_path / "traces")))
    kwargs.setdefault("journal_dir", str(tmp_path / "journal"))
    return ExperimentEngine(jobs=jobs, metrics=True, **kwargs)


@pytest.fixture
def fault_env(monkeypatch, tmp_path):
    def arm(spec):
        monkeypatch.setenv(ENV_SPEC, spec)
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "fault-state"))

    monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path / "shm-manifests"))
    return arm


def grid_counters(engine, grid_index=-1):
    """The merged registry counters exported for one grid of a run."""
    run = load_run(engine.metrics_file)
    return run["grids"][grid_index]["registry"]["counters"]


class TestCrossProcessMerge:
    def test_parallel_merge_equals_serial_totals(self, tmp_path):
        """The parent's merged registry (parent counters + every worker's
        drained delta) must count exactly what a serial run counts: one
        kernel span per job, regardless of which worker ran it."""
        serial = engine_for(tmp_path / "serial", jobs=1)
        serial.run_grid(grid())
        serial_counts = grid_counters(serial)
        obs.disable()

        parallel = engine_for(tmp_path / "parallel", jobs=2)
        parallel.run_grid(grid())
        parallel_counts = grid_counters(parallel)

        n = len(grid())
        assert serial_counts["span.kernel.count"] == n
        assert parallel_counts["span.kernel.count"] == n
        assert parallel_counts["jobs.done"] == serial_counts["jobs.done"] == n
        queue_waits = load_run(parallel.metrics_file)["grids"][-1]["registry"][
            "histograms"
        ]["job.queue_wait"]
        assert queue_waits["count"] == n

    def test_worker_drain_does_not_double_count_across_grids(self, tmp_path):
        engine = engine_for(tmp_path, jobs=2)
        engine.run_grid(grid())
        # The export drains the parent registry per grid, so the live
        # registry starts the next grid from zero...
        assert obs.registry().snapshot()["counters"].get("span.kernel.count", 0) == 0
        engine.run_grid(grid())
        run = load_run(engine.metrics_file)
        # ...and each exported grid snapshot counts its own jobs exactly.
        totals = [
            grid_row["registry"]["counters"]["span.kernel.count"]
            for grid_row in run["grids"]
        ]
        assert totals == [len(grid()), len(grid())]


class TestMetricsFile:
    def test_every_journaled_job_has_a_metrics_row(self, tmp_path):
        engine = engine_for(tmp_path, jobs=2)
        outcomes = engine.run_grid(grid())
        assert all(outcome.ok for outcome in outcomes)
        run = load_run(engine.metrics_file)
        journal_rows = [
            json.loads(line)
            for line in open(os.path.join(str(tmp_path / "journal"), f"{engine.run_id}.jsonl"))
        ]
        journaled = {row["index"] for row in journal_rows if "index" in row}
        exported = {row["index"] for row in run["jobs"]}
        assert exported == journaled == set(range(len(grid())))

    def test_phase_times_sum_to_job_wall_time(self, tmp_path):
        """Acceptance invariant: per-job phase times sum (within 5%) to
        the journaled wall seconds."""
        engine = engine_for(tmp_path, jobs=2)
        engine.run_grid(grid())
        run = load_run(engine.metrics_file)
        executed = [row for row in run["jobs"] if row["status"] == "ok"]
        assert executed
        for row in executed:
            phase_sum = sum(row["phases"].values())
            assert phase_sum == pytest.approx(row["seconds"], rel=0.05)

    def test_serial_grid_exports_kernel_phase(self, tmp_path):
        engine = engine_for(tmp_path, jobs=1)
        engine.run_grid(grid())
        run = load_run(engine.metrics_file)
        for row in run["jobs"]:
            assert row["status"] == "ok"
            assert "kernel" in row["phases"]
            assert row["phases"]["kernel"] == pytest.approx(row["seconds"], rel=0.05)

    def test_cached_jobs_get_rows_too(self, tmp_path):
        engine = engine_for(
            tmp_path, jobs=1, result_cache=str(tmp_path / "results")
        )
        engine.run_grid(grid())
        engine.run_grid(grid())
        run = load_run(engine.metrics_file)
        statuses = [row["status"] for row in run["jobs"]]
        assert statuses.count("ok") == len(grid())
        assert statuses.count("cached") == len(grid())

    def test_metrics_off_writes_nothing(self, tmp_path):
        engine = ExperimentEngine(
            store=TraceStore(str(tmp_path / "traces")),
            jobs=1,
            journal_dir=str(tmp_path / "journal"),
            metrics=False,
        )
        outcomes = engine.run_grid(grid())
        assert all(outcome.ok for outcome in outcomes)
        assert engine.metrics_file is None
        assert outcomes[0].phases is None
        leftovers = [
            name
            for name in os.listdir(str(tmp_path / "journal"))
            if name.endswith(".metrics.jsonl")
        ]
        assert leftovers == []


class TestFaultPaths:
    def test_retried_job_row_counts_attempts(self, tmp_path, fault_env):
        fault_env("crash@2")
        engine = engine_for(tmp_path, jobs=2, retries=2)
        outcomes = engine.run_grid(grid())
        assert all(outcome.ok for outcome in outcomes)
        run = load_run(engine.metrics_file)
        # The injected crash retries job 2; a job in flight on the same
        # worker can be retried as collateral, so assert membership.
        retried = {row["index"] for row in run["jobs"] if row["attempts"] > 1}
        assert 2 in retried
        registry_counts = run["grids"][-1]["registry"]["counters"]
        assert registry_counts.get("retry.scheduled", 0) >= 1
        assert registry_counts.get("pool.worker_crashes", 0) >= 1

    def test_quarantined_job_rows_exported(self, tmp_path, fault_env):
        # Two always-crashing jobs, so retry rounds stay multi-job pool
        # batches (a single-job batch runs in-process, where faults never
        # fire) and both jobs exhaust their retries into quarantine.
        fault_env("crash@0x99,crash@1x99")
        engine = engine_for(tmp_path, jobs=2, retries=1)
        outcomes = engine.run_grid(grid())
        failed = [outcome for outcome in outcomes if not outcome.ok]
        assert [outcome.index for outcome in failed] == [0, 1]
        run = load_run(engine.metrics_file)
        rows = {row["index"]: row for row in run["jobs"]}
        assert len(rows) == len(grid())
        for outcome in failed:
            bad = rows[outcome.index]
            assert bad["status"] == "failed"
            assert "quarantined" in bad["error"]
        registry_counts = run["grids"][-1]["registry"]["counters"]
        assert registry_counts.get("jobs.quarantined", 0) == 2
        text = render_run_report(run)
        assert "2 failed (2 quarantined)" in text

    def test_report_run_renders_for_real_run(self, tmp_path):
        engine = engine_for(tmp_path, jobs=2)
        engine.run_grid(grid())
        text = report_run(engine.run_id, journal_dir=str(tmp_path / "journal"))
        assert f"run {engine.run_id}" in text
        assert "phase time shares" in text
        assert "kernel" in text
        assert "pool health" in text
