"""Metrics core: instruments, snapshot/merge semantics, disabled-mode
no-op guarantees."""

import pytest

from repro.obs import metrics as obs
from repro.obs.metrics import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import NULL_SPAN, span


class TestHistogram:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram(edges=(1.0, 2.0, 5.0))
        h.observe(1.0)  # lands exactly on the first edge
        h.observe(1.5)
        h.observe(2.0)
        h.observe(5.0)
        assert h.counts == [1, 2, 1, 0]

    def test_overflow_bucket_catches_values_past_last_edge(self):
        h = Histogram(edges=(1.0, 2.0))
        h.observe(100.0)
        h.observe(2.0001)
        assert h.counts == [0, 0, 2]
        assert list(h.buckets()) == [(1.0, 0), (2.0, 0), (None, 2)]

    def test_mean_and_count(self):
        h = Histogram(edges=COUNT_BUCKETS)
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.count == 2
        assert h.mean == 3.0

    def test_unsorted_or_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))


class TestRegistry:
    def test_instruments_are_lazily_interned(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_snapshot_roundtrips_through_merge(self):
        source = MetricsRegistry()
        source.counter("jobs").inc(3)
        source.gauge("peak").set(7)
        source.histogram("t", edges=(1.0, 2.0)).observe(1.5)
        target = MetricsRegistry()
        target.counter("jobs").inc(1)
        target.gauge("peak").set(9)
        target.merge(source.snapshot())
        assert target.counter("jobs").value == 4
        assert target.gauge("peak").value == 9  # gauges keep the max
        assert target.histogram("t", edges=(1.0, 2.0)).counts == [0, 1, 0]

    def test_drain_never_double_counts(self):
        r = MetricsRegistry()
        r.counter("jobs").inc(5)
        parent = MetricsRegistry()
        parent.merge(r.drain())
        parent.merge(r.drain())  # second drain ships an empty delta
        assert parent.counter("jobs").value == 5

    def test_merge_rejects_mismatched_histogram_edges(self):
        a = MetricsRegistry()
        a.histogram("t", edges=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("t", edges=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="edges differ"):
            a.merge(b.snapshot())

    def test_merge_rejects_unknown_schema(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="schema"):
            r.merge({"schema": 999, "counters": {}})
        r.merge(None)  # empty/None snapshots are dropped silently
        r.merge({})

    def test_reset_keeps_names_but_zeroes_values(self):
        r = MetricsRegistry()
        c = r.counter("jobs")
        c.inc(4)
        h = r.histogram("t", edges=(1.0,))
        h.observe(0.5)
        r.reset()
        assert c.value == 0
        assert h.counts == [0, 0] and h.total == 0.0 and h.count == 0
        assert r.counter("jobs") is c


class TestDisabledMode:
    def test_disabled_registry_is_the_shared_null_singleton(self):
        obs.disable()
        assert obs.registry() is NULL_REGISTRY
        assert not obs.enabled()

    def test_null_instruments_are_shared_singletons(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        null.counter("a").inc()
        null.gauge("a").set(3)
        null.histogram("a").observe(1.0)
        assert null.snapshot()["counters"] == {}

    def test_checked_helpers_are_noops_when_disabled(self):
        obs.disable()
        obs.inc("jobs")
        obs.gauge_set("peak", 3)
        obs.observe("t", 0.5)
        live = obs.enable()
        assert live.snapshot()["counters"] == {}

    def test_span_returns_null_singleton_when_disabled(self):
        obs.disable()
        assert span("kernel") is NULL_SPAN
        with span("kernel"):
            pass  # must be a safe no-op

    def test_span_is_live_when_phases_requested_even_if_disabled(self):
        obs.disable()
        phases = {}
        with span("kernel", phases=phases):
            pass
        assert "kernel" in phases


class TestModuleSwitches:
    def test_enable_is_idempotent(self):
        first = obs.enable()
        first.counter("jobs").inc()
        assert obs.enable() is first

    def test_enable_with_explicit_target_replaces(self):
        obs.enable()
        fresh = MetricsRegistry()
        assert obs.enable(fresh) is fresh
        assert obs.registry() is fresh

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_METRICS, raising=False)
        assert not obs.env_enabled()
        monkeypatch.setenv(obs.ENV_METRICS, "0")
        assert not obs.env_enabled()
        monkeypatch.setenv(obs.ENV_METRICS, "1")
        assert obs.env_enabled()

    def test_checked_helpers_record_when_enabled(self):
        live = obs.enable()
        obs.inc("jobs", 2)
        obs.gauge_set("peak", 5)
        obs.observe("t", 0.5, edges=(1.0,))
        snap = live.snapshot()
        assert snap["counters"]["jobs"] == 2
        assert snap["gauges"]["peak"] == 5
        assert snap["histograms"]["t"]["count"] == 1


class TestSpanRecording:
    def test_span_records_wall_cpu_and_count(self):
        live = obs.enable()
        with span("phase.x"):
            sum(range(1000))
        snap = live.snapshot()
        assert snap["counters"]["span.phase.x.count"] == 1
        assert snap["histograms"]["span.phase.x.wall"]["count"] == 1
        assert snap["histograms"]["span.phase.x.cpu"]["count"] == 1
        assert snap["histograms"]["span.phase.x.wall"]["total"] >= 0.0

    def test_span_accumulates_phases_across_uses(self):
        obs.enable()
        phases = {}
        with span("kernel", phases=phases):
            pass
        first = phases["kernel"]
        with span("kernel", phases=phases):
            pass
        assert phases["kernel"] > first
