"""Metrics JSONL export: writer layout, loader tolerance, report text."""

import json

import pytest

from repro.obs.export import (
    METRICS_SCHEMA,
    MetricsExportError,
    MetricsWriter,
    load_run,
    metrics_path,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    merged_registry,
    render_run_report,
    report_run,
    resolve_metrics_file,
)


def job_row(index, status="ok", seconds=0.5, **extra):
    row = {
        "index": index,
        "job": "abc123",
        "describe": f"job-{index}",
        "ok": status in ("ok", "cached", "replayed"),
        "status": status,
        "seconds": seconds,
        "attempts": 1,
        "worker": 0,
        "queue_wait": 0.01,
        "phases": {"kernel": seconds},
        "error": None,
    }
    row.update(extra)
    return row


def write_sample_run(path, run_id="r1", jobs=3):
    writer = MetricsWriter(str(path), run_id)
    for index in range(jobs):
        writer.write_job(job_row(index))
    registry = MetricsRegistry()
    registry.counter("result_cache.hit").inc(2)
    registry.counter("result_cache.miss").inc(1)
    writer.write_grid(registry.snapshot(), jobs=jobs)
    writer.close()


class TestWriter:
    def test_layout_run_then_jobs_then_grid(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["event"] for row in rows] == ["run", "job", "job", "job", "grid"]
        assert all(row["schema"] == METRICS_SCHEMA for row in rows)
        assert rows[0]["run_id"] == "r1"
        assert rows[-1]["jobs"] == 3

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        MetricsWriter(str(path), "r1").close()
        writer = MetricsWriter(str(path), "r1")
        writer.write_job(job_row(0))
        writer.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["event"] for row in rows] == ["run", "job"]

    def test_metrics_path_layout(self):
        assert metrics_path("/j", "r1") == "/j/r1.metrics.jsonl"


class TestLoader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        run = load_run(str(path))
        assert run["run_id"] == "r1"
        assert len(run["jobs"]) == 3
        assert len(run["grids"]) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(MetricsExportError, match="no metrics file"):
            load_run(str(tmp_path / "nope.jsonl"))

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        with open(path, "a") as handle:
            handle.write('{"event": "job", "trunc')
        run = load_run(str(path))
        assert len(run["jobs"]) == 3

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"event": "job", "broken'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(MetricsExportError, match="corrupt metrics line 2"):
            load_run(str(path))

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        path.write_text('{"schema": 999, "event": "run", "run_id": "r1"}\n')
        with pytest.raises(MetricsExportError, match="schema"):
            load_run(str(path))


class TestReport:
    def test_report_covers_every_section(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        text = render_run_report(load_run(str(path)))
        assert "run r1" in text
        assert "phase time shares" in text
        assert "kernel" in text and "queue_wait" in text
        assert "top 3 slowest jobs" in text
        assert "2 hit / 3 lookups (66.7%)" in text

    def test_retry_histogram_rendered_when_attempts_vary(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        writer = MetricsWriter(str(path), "r1")
        writer.write_job(job_row(0, attempts=1))
        writer.write_job(job_row(1, attempts=3))
        writer.write_grid(MetricsRegistry().snapshot(), jobs=2)
        writer.close()
        text = render_run_report(load_run(str(path)))
        assert "retry histogram" in text
        assert "3 attempt(s): 1 job(s)" in text

    def test_merged_registry_sums_grids(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        writer = MetricsWriter(str(path), "r1")
        for _ in range(2):
            registry = MetricsRegistry()
            registry.counter("result_cache.hit").inc(1)
            writer.write_grid(registry.snapshot(), jobs=0)
        writer.close()
        merged = merged_registry(load_run(str(path)))
        assert merged.counter("result_cache.hit").value == 2

    def test_resolve_by_run_id_and_direct_path(self, tmp_path):
        path = tmp_path / "r1.metrics.jsonl"
        write_sample_run(path)
        assert resolve_metrics_file("r1", str(tmp_path)) == str(path)
        assert resolve_metrics_file(str(path)) == str(path)
        with pytest.raises(MetricsExportError, match="no metrics file"):
            resolve_metrics_file("r2", str(tmp_path))

    def test_report_run_entrypoint(self, tmp_path):
        write_sample_run(tmp_path / "r1.metrics.jsonl")
        assert "run r1" in report_run("r1", journal_dir=str(tmp_path))
