"""benchmarks/check_regression.py: comparison output and input validation."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "benchmarks" / "check_regression.py"


def bench_json(path: Path, benches):
    path.write_text(json.dumps({"benchmarks": benches}))
    return str(path)


def entry(name, mean):
    return {"name": name, "stats": {"mean": mean}}


def run(*argv):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO),
    )


@pytest.fixture
def baseline(tmp_path):
    return bench_json(tmp_path / "baseline.json", [entry("bench_a", 0.100)])


class TestComparison:
    def test_clean_run_exits_zero(self, tmp_path, baseline):
        fresh = bench_json(tmp_path / "fresh.json", [entry("bench_a", 0.101)])
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 0
        assert "no regressions" in proc.stdout

    def test_regression_warns_but_does_not_gate(self, tmp_path, baseline):
        fresh = bench_json(tmp_path / "fresh.json", [entry("bench_a", 0.200)])
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 0  # informational by design
        assert "::warning" in proc.stdout
        assert "REGRESSION" in proc.stdout

    def test_disjoint_benchmarks(self, tmp_path, baseline):
        fresh = bench_json(tmp_path / "fresh.json", [entry("bench_b", 0.1)])
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 0
        assert "nothing compared" in proc.stdout


def gate_entry(name, mean, backend, kernel="generic", gate="backend"):
    row = entry(name, mean)
    row["extra_info"] = {"backend": backend, "kernel": kernel, "gate": gate}
    return row


class TestBackendGate:
    """--backend-gate finds its row pair by stable extra_info metadata and
    gates on the same-run python/numpy speedup ratio."""

    def test_healthy_speedup_exits_zero(self, tmp_path):
        fresh = bench_json(
            tmp_path / "fresh.json",
            [
                gate_entry("test_backend_gate_python", 0.120, "python"),
                gate_entry("test_backend_gate_numpy", 0.017, "numpy"),
            ],
        )
        proc = run(fresh, "--backend-gate")
        assert proc.returncode == 0
        assert "ok" in proc.stdout

    def test_lost_speedup_gates(self, tmp_path):
        fresh = bench_json(
            tmp_path / "fresh.json",
            [
                gate_entry("test_backend_gate_python", 0.120, "python"),
                gate_entry("test_backend_gate_numpy", 0.060, "numpy"),
            ],
        )
        proc = run(fresh, "--backend-gate")
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "::error" in proc.stdout

    def test_missing_numpy_row_exits_two(self, tmp_path):
        """A run without NumPy skips the numpy gate row; gating such a run
        must be a clear configuration error, not a silent pass."""
        fresh = bench_json(
            tmp_path / "fresh.json",
            [gate_entry("test_backend_gate_python", 0.120, "python")],
        )
        proc = run(fresh, "--backend-gate")
        assert proc.returncode == 2
        assert "numpy" in proc.stderr
        assert "backend_gate" in proc.stderr  # points at the producing command

    def test_missing_both_rows_exits_two(self, tmp_path):
        fresh = bench_json(tmp_path / "fresh.json", [entry("bench_a", 0.1)])
        proc = run(fresh, "--backend-gate")
        assert proc.returncode == 2

    def test_untagged_rows_are_not_gate_rows(self, tmp_path):
        """Ordinary backend-tagged rows (no gate key) must not satisfy the
        gate: only the designated same-workload pair may be compared."""
        fresh = bench_json(
            tmp_path / "fresh.json",
            [
                gate_entry("test_vkernel_throughput_generic", 0.1, "numpy", gate=None),
                gate_entry("test_backend_gate_python", 0.120, "python"),
            ],
        )
        proc = run(fresh, "--backend-gate")
        assert proc.returncode == 2

    def test_default_path_ignores_extra_info(self, tmp_path, baseline):
        fresh = bench_json(
            tmp_path / "fresh.json",
            [gate_entry("bench_a", 0.101, "python")],
        )
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 0


class TestMalformedInput:
    """A missing metric key must be a clear error, not a KeyError trace."""

    def test_missing_stats_key(self, tmp_path, baseline):
        fresh = bench_json(tmp_path / "fresh.json", [{"name": "bench_a"}])
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 2
        assert "KeyError" not in proc.stderr
        assert "bench_a" in proc.stderr
        assert "'stats'/'mean'" in proc.stderr

    def test_missing_mean_key(self, tmp_path, baseline):
        fresh = bench_json(
            tmp_path / "fresh.json", [{"name": "bench_a", "stats": {"median": 1}}]
        )
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 2
        assert "pytest-benchmark" in proc.stderr

    def test_nameless_entry_reported_by_position(self, tmp_path, baseline):
        fresh = bench_json(tmp_path / "fresh.json", [{"stats": {}}])
        proc = run(fresh, "--baseline", baseline)
        assert proc.returncode == 2
        assert "entry 0" in proc.stderr

    def test_malformed_baseline_also_caught(self, tmp_path):
        fresh = bench_json(tmp_path / "fresh.json", [entry("bench_a", 0.1)])
        bad = bench_json(tmp_path / "bad.json", [{"name": "bench_a"}])
        proc = run(fresh, "--baseline", bad)
        assert proc.returncode == 2
        assert "bad.json" in proc.stderr
