"""Experiment definitions produce well-formed output on small caps."""

import pytest

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import TraceStore
from repro.workloads.suite import SUITE_NAMES

CAP = 4000


@pytest.fixture(scope="module")
def store():
    return TraceStore()


class TestRegistry:
    def test_expected_experiments_present(self):
        assert {"table1", "table2", "table3", "table4", "fig7", "fig8"} <= set(
            EXPERIMENTS
        )

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table99")


class TestTable1:
    def test_matches_paper_exactly(self, store):
        output = run_experiment("table1", store, CAP)
        rows = output.tables[0].rows
        assert all(ours == paper for _, ours, paper in rows)


@pytest.mark.parametrize(
    "name",
    [
        "table3",
        "table4",
        "fig7",
        "lifetimes",
        "abl-twopass",
        "abl-baselines",
        "abl-disambiguation",
        "abl-latency",
        "machines",
    ],
)
def test_per_workload_experiments_cover_suite(store, name):
    output = run_experiment(name, store, CAP)
    table = output.tables[0]
    assert [row[0] for row in table.rows] == list(SUITE_NAMES)
    assert output.render()


class TestTable3:
    def test_conservative_error_bounds(self, store):
        output = run_experiment("table3", store, CAP)
        for row in output.tables[0].rows:
            error = row[6]
            assert 0.0 <= error <= 1.0


class TestTable4:
    def test_renaming_columns_monotone(self, store):
        output = run_experiment("table4", store, CAP)
        for row in output.tables[0].rows:
            none, regs, stack, full = row[1:5]
            assert none <= regs + 1e-9
            assert regs <= stack + 1e-9
            assert stack <= full + 1e-9


class TestFig7:
    def test_figures_emitted(self, store):
        output = run_experiment("fig7", store, CAP)
        assert len(output.figures) == len(SUITE_NAMES)
        assert all("#" in fig for fig in output.figures.values())


class TestFig8:
    def test_percent_and_absolute_tables(self, store):
        output = run_experiment("fig8", store, CAP)
        percent, absolute = output.tables
        for row in percent.rows:
            values = row[1:]
            assert values == sorted(values)  # monotone in window size
            assert values[-1] == pytest.approx(100.0)
        for row in absolute.rows:
            assert row[1] <= row[-1]


class TestAblations:
    def test_resources_bounded_by_fu_count(self, store):
        output = run_experiment("abl-resources", store, CAP)
        for row in output.tables[0].rows:
            assert row[1] <= 1.0 + 1e-9  # one universal FU -> AP <= 1

    def test_branch_perfect_at_least_as_good(self, store):
        output = run_experiment("abl-branch", store, CAP)
        for row in output.tables[0].rows:
            perfect = row[1]
            for value in row[2:6]:
                assert value <= perfect + 1e-9

    def test_twopass_reports_identical_cp(self, store):
        output = run_experiment("abl-twopass", store, CAP)
        for row in output.tables[0].rows:
            assert row[4] is True

    def test_baselines_cp_match(self, store):
        output = run_experiment("abl-baselines", store, CAP)
        for row in output.tables[0].rows:
            assert row[3] is True

    def test_disambiguation_never_gains(self, store):
        output = run_experiment("abl-disambiguation", store, CAP)
        for row in output.tables[0].rows:
            assert row[2] <= row[1] + 1e-9

    def test_machines_dominance(self, store):
        output = run_experiment("machines", store, CAP)
        for row in output.tables[0].rows:
            assert row[1] <= 1.0 + 1e-9  # scalar
            assert row[4] <= row[5] + 1e-9  # restricted <= ideal

    def test_compiler_ablation_shape(self, store):
        output = run_experiment("abl-compiler", store, CAP)
        for row in output.tables[0].rows:
            assert row[1] == CAP  # both streams fill the cap
            assert row[4] > 0
