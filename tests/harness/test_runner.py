"""Trace store caching, staleness recovery, and disk sharing."""

import os

import pytest

from repro.harness.runner import TraceStore
from repro.trace.io import read_trace_digest, write_trace_file
from repro.trace.synthetic import random_trace
from repro.workloads.suite import load_workload


class TestMemoryCache:
    def test_trace_cached_by_key(self):
        store = TraceStore()
        first = store.trace("xlispx", 2000)
        second = store.trace("xlispx", 2000)
        assert first is second

    def test_distinct_caps_distinct_traces(self):
        store = TraceStore()
        assert len(store.trace("xlispx", 1000)) == 1000
        assert len(store.trace("xlispx", 3000)) == 3000

    def test_accepts_workload_object(self):
        store = TraceStore()
        workload = load_workload("cc1x")
        assert len(store.trace(workload, 500)) == 500

    def test_optimize_cached_separately(self):
        store = TraceStore()
        plain = store.trace("xlispx", 1000)
        optimized = store.trace("xlispx", 1000, optimize=True)
        assert plain is not optimized
        assert store.trace("xlispx", 1000, optimize=True) is optimized


class TestDiskCache:
    def test_round_trip_through_disk(self, tmp_path):
        directory = str(tmp_path / "traces")
        first_store = TraceStore(directory)
        trace = first_store.trace("xlispx", 1500)
        assert os.path.exists(os.path.join(directory, "xlispx.1500.pgt"))
        second_store = TraceStore(directory)
        loaded = second_store.trace("xlispx", 1500)
        assert loaded.records == trace.records


class TestStaleness:
    """A stale, truncated, or corrupted cache file must fail loudly and be
    regenerated — never silently analyzed."""

    def _cache_file(self, tmp_path, cap=1500):
        directory = str(tmp_path / "traces")
        fresh = TraceStore(directory).trace("xlispx", cap)
        return directory, os.path.join(directory, f"xlispx.{cap}.pgt"), fresh

    def test_corrupted_record_regenerated(self, tmp_path, caplog):
        directory, path, fresh = self._cache_file(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-2] ^= 0xFF  # flip a bit in the record stream
        open(path, "wb").write(bytes(data))
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            reloaded = TraceStore(directory).trace("xlispx", 1500)
        assert reloaded.records == fresh.records
        assert any("regenerating" in message for message in caplog.messages)
        read_trace_digest(path)  # the rewritten file is valid again

    def test_truncated_file_regenerated(self, tmp_path, caplog):
        directory, path, fresh = self._cache_file(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            reloaded = TraceStore(directory).trace("xlispx", 1500)
        assert reloaded.records == fresh.records
        assert any("regenerating" in message for message in caplog.messages)

    def test_truncated_mid_header_regenerated(self, tmp_path, caplog):
        """Cut inside the 60-byte PGT2 header — the read fails before a
        single record (or the digest) is seen."""
        directory, path, fresh = self._cache_file(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:30])
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            reloaded = TraceStore(directory).trace("xlispx", 1500)
        assert reloaded.records == fresh.records
        assert any("regenerating" in message for message in caplog.messages)
        read_trace_digest(path)  # rewritten file is whole again

    def test_truncated_mid_records_regenerated(self, tmp_path, caplog):
        """Cut a few bytes into the record stream — header parses, digest
        check never gets a full stream to verify."""
        directory, path, fresh = self._cache_file(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:70])  # header (60 B) + partial record
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            reloaded = TraceStore(directory).trace("xlispx", 1500)
        assert reloaded.records == fresh.records
        assert any("regenerating" in message for message in caplog.messages)
        read_trace_digest(path)

    def test_truncated_file_regenerated_by_columnar(self, tmp_path, caplog):
        """The columnar path (what parallel grids use) recovers from both
        truncation shapes too."""
        directory, path, fresh = self._cache_file(tmp_path)
        for cut in (30, 70):  # mid-header, then mid-records
            data = open(path, "rb").read()
            open(path, "wb").write(data[:cut])
            with caplog.at_level("WARNING", logger="repro.harness.runner"):
                reloaded = TraceStore(directory).columnar("xlispx", 1500)
            assert reloaded.digest() == fresh.digest()
            assert any("regenerating" in message for message in caplog.messages)
            caplog.clear()

    def test_invalidate_drops_all_cached_forms(self, tmp_path):
        directory, path, fresh = self._cache_file(tmp_path)
        store = TraceStore(directory)
        store.trace("xlispx", 1500)
        store.columnar("xlispx", 1500)
        assert store.invalidate("xlispx", 1500) is True
        assert not os.path.exists(path)
        assert store.invalidate("xlispx", 1500) is False  # nothing left
        regenerated = store.trace("xlispx", 1500)
        assert regenerated.records == fresh.records
        assert os.path.exists(path)

    def test_oversized_file_regenerated(self, tmp_path, caplog):
        """A valid file holding more records than the cap is stale (written
        under the same name by a run with different parameters)."""
        directory = str(tmp_path / "traces")
        store = TraceStore(directory)
        path = os.path.join(directory, "xlispx.1500.pgt")
        write_trace_file(path, random_trace(seed=1, length=1600))
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            reloaded = store.trace("xlispx", 1500)
        assert len(reloaded) <= 1500
        assert any("regenerating" in message for message in caplog.messages)


class TestEnsureOnDisk:
    def test_requires_disk_backed_store(self):
        with pytest.raises(ValueError, match="disk-backed"):
            TraceStore().ensure_on_disk("xlispx", 1000)

    def test_digest_matches_memory_and_header(self, tmp_path):
        store = TraceStore(str(tmp_path))
        path, digest = store.ensure_on_disk("xlispx", 1000)
        assert digest == store.trace("xlispx", 1000).digest()
        assert read_trace_digest(path) == digest

    def test_cold_file_needs_header_only(self, tmp_path):
        _, digest = TraceStore(str(tmp_path)).ensure_on_disk("xlispx", 1000)
        cold = TraceStore(str(tmp_path))
        path, cold_digest = cold.ensure_on_disk("xlispx", 1000)
        assert cold_digest == digest
        # records were never loaded: the digest came from the file header
        assert ("xlispx", 1000, False) not in cold._memory

    def test_divergent_disk_file_rewritten(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = store.trace("xlispx", 1000)  # in memory and on disk
        path = os.path.join(str(tmp_path), "xlispx.1000.pgt")
        write_trace_file(path, random_trace(seed=2, length=100))  # clobber
        returned_path, digest = store.ensure_on_disk("xlispx", 1000)
        assert returned_path == path
        assert digest == trace.digest()
        assert read_trace_digest(path) == digest

    def test_corrupt_file_regenerated(self, tmp_path, caplog):
        store = TraceStore(str(tmp_path))
        path, digest = store.ensure_on_disk("xlispx", 1000)
        open(path, "wb").write(b"garbage")
        cold = TraceStore(str(tmp_path))
        with caplog.at_level("WARNING", logger="repro.harness.runner"):
            repaired_path, repaired_digest = cold.ensure_on_disk("xlispx", 1000)
        assert repaired_path == path
        assert repaired_digest == digest
        assert read_trace_digest(path) == digest


class TestFullRunLength:
    def test_length_cached(self):
        store = TraceStore()
        first = store.full_run_length("doducx")
        second = store.full_run_length("doducx")
        assert first == second > 100_000
