"""Trace store caching."""

import os

from repro.harness.runner import TraceStore
from repro.workloads.suite import load_workload


class TestMemoryCache:
    def test_trace_cached_by_key(self):
        store = TraceStore()
        first = store.trace("xlispx", 2000)
        second = store.trace("xlispx", 2000)
        assert first is second

    def test_distinct_caps_distinct_traces(self):
        store = TraceStore()
        assert len(store.trace("xlispx", 1000)) == 1000
        assert len(store.trace("xlispx", 3000)) == 3000

    def test_accepts_workload_object(self):
        store = TraceStore()
        workload = load_workload("cc1x")
        assert len(store.trace(workload, 500)) == 500


class TestDiskCache:
    def test_round_trip_through_disk(self, tmp_path):
        directory = str(tmp_path / "traces")
        first_store = TraceStore(directory)
        trace = first_store.trace("xlispx", 1500)
        assert os.path.exists(os.path.join(directory, "xlispx.1500.pgt"))
        second_store = TraceStore(directory)
        loaded = second_store.trace("xlispx", 1500)
        assert loaded.records == trace.records


class TestFullRunLength:
    def test_length_cached(self):
        store = TraceStore()
        first = store.full_run_length("doducx")
        second = store.full_run_length("doducx")
        assert first == second > 100_000
