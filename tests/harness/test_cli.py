"""Command-line interface."""

import os

import pytest

from repro.harness.cli import main


class TestList:
    def test_lists_experiments_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "xlispx" in out


class TestRun:
    def test_run_prints_table(self, capsys):
        assert main(["run", "table1", "--cap", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Instruction Class Operation Times" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["run", "table1", "--cap", "1000", "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "table1.txt"))
        assert os.path.exists(os.path.join(out_dir, "table1.csv"))

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "tableX", "--cap", "1000"])


class TestReport:
    def test_report_generated(self, tmp_path, capsys):
        out = str(tmp_path / "EXPERIMENTS.md")
        assert main(["report", "--cap", "2500", "--out", out]) == 0
        text = open(out).read()
        assert "# EXPERIMENTS" in text
        assert "Table 4" in text
        assert "Figure 8" in text
        assert "stack-renaming gain" in text
        # every registered experiment appears
        assert text.count("## ") >= 13


class TestAnalyze:
    def test_analyze_workload(self, capsys):
        assert main(["analyze", "xlispx", "--cap", "3000"]) == 0
        out = capsys.readouterr().out
        assert "available ILP" in out
        assert "critical path" in out

    def test_analyze_with_switches(self, capsys):
        code = main(
            [
                "analyze", "cc1x", "--cap", "2000", "--window", "64",
                "--no-rename-data", "--syscalls", "optimistic", "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "level in DDG" in out  # profile plot printed

    def test_analyze_lifetimes(self, capsys):
        assert main(["analyze", "xlispx", "--cap", "2000", "--lifetimes"]) == 0
        assert "lifetimes:" in capsys.readouterr().out

    def test_bad_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["analyze", "nonesuch"])

    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.trace.io import write_trace_file
        from repro.trace.synthetic import random_trace

        path = str(tmp_path / "t.pgt")
        write_trace_file(path, random_trace(3, 500))
        assert main(["analyze", path, "--cap", "300"]) == 0
        out = capsys.readouterr().out
        assert "records=300" in out


class TestVerify:
    def test_small_sweep_passes(self, capsys):
        assert main(["verify", "--cases", "15", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_progress_lines(self, capsys):
        assert main(["verify", "--cases", "5", "--seed", "0", "--progress"]) == 0
        assert "5/5 cases" in capsys.readouterr().err

    def test_mutation_caught(self, tmp_path, capsys):
        code = main(
            [
                "verify", "--cases", "40", "--seed", "0",
                "--mutate", "kernel-load-skew",
                "--artifact-dir", str(tmp_path),
            ]
        )
        assert code == 0  # caught, as expected
        out = capsys.readouterr().out
        assert "caught" in out
        assert any(name.endswith(".pgt2") for name in os.listdir(str(tmp_path)))

    def test_unknown_mutation_rejected(self, capsys):
        code = main(["verify", "--cases", "1", "--mutate", "nope"])
        assert code == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_replay_artifact(self, tmp_path, capsys):
        from repro.verify.artifacts import persist_failure
        from repro.verify.generate import generate_case

        case = generate_case(0, 3)
        _, meta_path = persist_failure(str(tmp_path), case, case.trace, ["x"])
        assert main(["verify", "--replay", meta_path]) == 0
        assert "no longer fails" in capsys.readouterr().out

    def test_analyze_reads_pgt2_artifacts(self, tmp_path, capsys):
        from repro.trace.io import write_trace_file
        from repro.trace.synthetic import random_trace

        path = str(tmp_path / "case.pgt2")
        write_trace_file(path, random_trace(5, 400))
        assert main(["analyze", path, "--cap", "400"]) == 0
        assert "records=400" in capsys.readouterr().out
