"""Command-line interface."""

import os

import pytest

from repro.harness.cli import main


class TestList:
    def test_lists_experiments_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "xlispx" in out


class TestRun:
    def test_run_prints_table(self, capsys):
        assert main(["run", "table1", "--cap", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Instruction Class Operation Times" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["run", "table1", "--cap", "1000", "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "table1.txt"))
        assert os.path.exists(os.path.join(out_dir, "table1.csv"))

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "tableX", "--cap", "1000"])


class TestReport:
    def test_report_generated(self, tmp_path, capsys):
        out = str(tmp_path / "EXPERIMENTS.md")
        assert main(["report", "--cap", "2500", "--out", out]) == 0
        text = open(out).read()
        assert "# EXPERIMENTS" in text
        assert "Table 4" in text
        assert "Figure 8" in text
        assert "stack-renaming gain" in text
        # every registered experiment appears
        assert text.count("## ") >= 13


class TestAnalyze:
    def test_analyze_workload(self, capsys):
        assert main(["analyze", "xlispx", "--cap", "3000"]) == 0
        out = capsys.readouterr().out
        assert "available ILP" in out
        assert "critical path" in out

    def test_analyze_with_switches(self, capsys):
        code = main(
            [
                "analyze", "cc1x", "--cap", "2000", "--window", "64",
                "--no-rename-data", "--syscalls", "optimistic", "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "level in DDG" in out  # profile plot printed

    def test_analyze_lifetimes(self, capsys):
        assert main(["analyze", "xlispx", "--cap", "2000", "--lifetimes"]) == 0
        assert "lifetimes:" in capsys.readouterr().out

    def test_bad_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["analyze", "nonesuch"])

    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.trace.io import write_trace_file
        from repro.trace.synthetic import random_trace

        path = str(tmp_path / "t.pgt")
        write_trace_file(path, random_trace(3, 500))
        assert main(["analyze", path, "--cap", "300"]) == 0
        out = capsys.readouterr().out
        assert "records=300" in out
