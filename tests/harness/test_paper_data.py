"""Published-numbers tables: internal consistency and coverage."""

from repro.harness.paper_data import PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4
from repro.workloads.suite import all_workloads


class TestCoverage:
    def test_every_analog_covered(self):
        analogs = {w.analog_of for w in all_workloads()}
        assert set(PAPER_TABLE2) == analogs
        assert set(PAPER_TABLE3) == analogs
        assert set(PAPER_TABLE4) == analogs


class TestInternalConsistency:
    def test_table3_conservative_slower(self):
        for name, row in PAPER_TABLE3.items():
            _, cons_cp, cons_ap, opt_cp, opt_ap, error = row
            assert cons_cp >= opt_cp, name
            assert cons_ap <= opt_ap, name
            # the published error column is 1 - cons/opt, rounded to 2 dp
            assert abs((1 - cons_ap / opt_ap) - error) < 0.013, name

    def test_table4_monotone(self):
        for name, (none, regs, stack, full) in PAPER_TABLE4.items():
            assert none <= regs <= stack <= full + 1e-9, name

    def test_table4_full_matches_table3_conservative(self):
        for name in PAPER_TABLE4:
            full = PAPER_TABLE4[name][3]
            cons_ap = PAPER_TABLE3[name][2]
            assert abs(full - cons_ap) < 0.25, name

    def test_table2_analyzed_at_most_total(self):
        for name, (total, analyzed) in PAPER_TABLE2.items():
            assert analyzed <= total, name
            assert analyzed <= 120_000_000, name
