"""Golden regression pin for the Table 3 dataflow limit.

Unlike the shape checks in test_experiments.py, this compares the full
Table 3 output at a fixed cap against committed values with **zero
tolerance**: the dataflow limit is a pure function of the trace and the
placement rule, so any drift here means the analyzer semantics changed —
exactly the regression the differential ``verify`` subsystem exists to
catch, pinned once more against real workload traces.

If a deliberate semantic change lands, regenerate the goldens with::

    PYTHONPATH=src python - <<'EOF'
    from repro.harness.experiments import run_experiment
    from repro.harness.runner import TraceStore
    for row in run_experiment("table3", TraceStore(), 4000).tables[0].rows:
        print(repr(row))
    EOF
"""

import pytest

from repro.harness.experiments import run_experiment
from repro.harness.runner import TraceStore

CAP = 4000

#: (workload, syscalls, conservative CP, conservative AP, optimistic CP,
#: optimistic AP) at cap 4000. The paper-reference columns (7, 8) are
#: static data checked elsewhere; floats here are exact — the AP division
#: is deterministic across platforms.
GOLDEN = {
    "cc1x": (0, 727, 4.502063273727648, 727, 4.502063273727648),
    "doducx": (0, 90, 40.43333333333333, 90, 40.43333333333333),
    "eqntottx": (0, 48, 75.39583333333333, 48, 75.39583333333333),
    "espressox": (0, 58, 61.08620689655172, 58, 61.08620689655172),
    "fppppx": (0, 187, 19.41711229946524, 187, 19.41711229946524),
    "matrix300x": (0, 93, 41.0, 93, 41.0),
    "naskerx": (0, 171, 21.023391812865498, 171, 21.023391812865498),
    "spice2g6x": (0, 252, 14.583333333333334, 252, 14.583333333333334),
    "tomcatvx": (0, 84, 44.86904761904762, 84, 44.86904761904762),
    "xlispx": (0, 251, 13.418326693227092, 251, 13.418326693227092),
}


@pytest.fixture(scope="module")
def rows():
    output = run_experiment("table3", TraceStore(), CAP)
    return {row[0]: row for row in output.tables[0].rows}


class TestTable3Golden:
    def test_workload_set_unchanged(self, rows):
        assert set(rows) == set(GOLDEN)

    @pytest.mark.parametrize("workload", sorted(GOLDEN))
    def test_row_exact(self, rows, workload):
        syscalls, cons_cp, cons_ap, opt_cp, opt_ap = GOLDEN[workload]
        row = rows[workload]
        assert row[1] == syscalls, "syscall count drifted"
        assert row[2] == cons_cp, "conservative critical path drifted"
        assert row[3] == cons_ap, "conservative available parallelism drifted"
        assert row[4] == opt_cp, "optimistic critical path drifted"
        assert row[5] == opt_ap, "optimistic available parallelism drifted"

    def test_error_column_consistent(self, rows):
        # with zero syscalls in the first 4000 records the two policies
        # coincide, so the bounded measurement error must be exactly zero
        for row in rows.values():
            assert row[6] == 0.0
