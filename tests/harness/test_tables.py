"""Table rendering."""

from repro.harness.tables import Table


def sample():
    table = Table("Demo", ["Name", "Value", "Rate"])
    table.add_row("alpha", 12345, 0.5)
    table.add_row("beta", 7, 123456.789)
    return table


class TestRender:
    def test_title_and_headers_present(self):
        text = sample().render()
        assert "Demo" in text
        assert "Name" in text and "Rate" in text

    def test_int_thousands_separator(self):
        assert "12,345" in sample().render()

    def test_large_float_compact(self):
        assert "123,456.8" in sample().render()

    def test_small_float_format(self):
        assert "0.50" in sample().render()

    def test_custom_float_format(self):
        assert "0.5000" in sample().render(floatfmt=".4f")

    def test_notes_appended(self):
        table = sample()
        table.notes = "a remark"
        assert table.render().endswith("a remark")

    def test_bool_rendering(self):
        table = Table("T", ["ok"])
        table.add_row(True)
        table.add_row(False)
        text = table.render()
        assert "yes" in text and "no" in text

    def test_nan_rendered_as_dash(self):
        table = Table("T", ["x"])
        table.add_row(float("nan"))
        assert "-" in table.render()


class TestCsv:
    def test_csv_shape(self):
        csv = sample().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "Name,Value,Rate"
        assert lines[1].startswith("alpha,12345,")
