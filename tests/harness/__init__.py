"""Test package."""
