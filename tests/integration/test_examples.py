"""Every example script must run to completion (with small arguments)."""

import runpy
import sys

import pytest

EXAMPLES = {
    "quickstart.py": [],
    "renaming_study.py": ["matrix300x", "40000"],
    "window_study.py": ["tomcatvx", "30000"],
    "custom_workload.py": [],
    "interpreter_paradox.py": [],
    "critical_path_anatomy.py": ["naskerx", "30000"],
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script] + EXAMPLES[script])
    runpy.run_path(f"examples/{script}", run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # it said something substantial


def test_quickstart_reports_paper_numbers(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "critical path      = 4 levels" in out  # Figure 1
    assert "critical path      = 6 levels" in out  # Figure 2
    assert "[4, 2, 1, 1]" in out
    assert "[2, 1, 2, 1, 1, 1]" in out
