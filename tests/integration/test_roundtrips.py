"""Round-trip properties across the toolchain."""

import pytest

from repro.asm.assembler import assemble
from repro.cpu.machine import Machine
from repro.lang.compiler import compile_source, compile_to_assembly
from repro.trace.io import read_trace_file, write_trace_file
from repro.workloads.suite import SUITE_NAMES, load_workload


class TestCompilerDeterminism:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_assembly_deterministic(self, name):
        source = load_workload(name).source()
        static = load_workload(name).static_frames
        first = compile_to_assembly(source, static_frames=static)
        second = compile_to_assembly(source, static_frames=static)
        assert first == second


class TestDisassemblyRoundTrip:
    @pytest.mark.parametrize("name", ["cc1x", "naskerx", "xlispx"])
    def test_workload_disassembles_and_reassembles(self, name):
        workload = load_workload(name)
        program = workload.program()
        again = assemble(program.disassemble())
        assert len(again.instructions) == len(program.instructions)
        # note: data segments are not carried by disassemble(); compare text
        for ours, theirs in zip(program.instructions, again.instructions):
            assert str(ours) == str(theirs)


class TestTraceFileRoundTrip:
    def test_workload_trace_survives_disk(self, tmp_path):
        trace = load_workload("espressox").trace(max_instructions=20_000)
        path = tmp_path / "espressox.pgt"
        write_trace_file(path, trace)
        loaded = read_trace_file(path)
        assert loaded.records == trace.records

    def test_analysis_identical_after_round_trip(self, tmp_path):
        from repro.core import AnalysisConfig, analyze

        trace = load_workload("fppppx").trace(max_instructions=20_000)
        path = tmp_path / "f.pgt"
        write_trace_file(path, trace)
        loaded = read_trace_file(path)
        direct = analyze(trace, AnalysisConfig())
        reloaded = analyze(loaded, AnalysisConfig())
        assert direct.critical_path_length == reloaded.critical_path_length
        assert direct.profile.counts == reloaded.profile.counts


class TestMachineReplayDeterminism:
    def test_two_runs_identical_traces(self):
        program = compile_source(load_workload("eqntottx").source())
        first = Machine(program)
        first.run(max_instructions=30_000)
        second = Machine(program)
        second.run(max_instructions=30_000)
        assert first.trace.records == second.trace.records
