"""Test package."""
