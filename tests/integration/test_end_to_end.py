"""End-to-end pipelines: MiniC -> asm -> simulator -> Paragraph.

These tests assert analytically derivable parallelism numbers for small
kernels through the *whole* stack, plus the paper's qualitative findings on
the real workload suite.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.core.reference import reference_analyze
from repro.cpu.machine import Machine
from repro.lang.compiler import compile_source
from repro.workloads.suite import load_workload


def trace_of(source, static_frames=False, cap=200_000, **kwargs):
    machine = Machine(compile_source(source, static_frames=static_frames), **kwargs)
    machine.run(max_instructions=cap)
    return machine.trace


class TestAnalyticKernels:
    def test_serial_recurrence_has_no_parallelism(self):
        # x = x*3+1 iterated: the loop body is one serial chain; available
        # parallelism must stay close to 1 even fully renamed.
        trace = trace_of(
            """
            void main() {
                int x = 1; int i;
                for (i = 0; i < 200; i = i + 1) { x = x * 3 + 1; }
                print_int(x & 65535);
            }
            """
        )
        result = analyze(trace, AnalysisConfig(latency=LatencyTable.unit()))
        # the x-chain advances 2 levels per ~8-instruction iteration
        assert result.available_parallelism < 6.0

    def test_independent_iterations_parallelize(self):
        # out[i] = i*i+i: iterations independent; only the induction chain
        # serializes, so parallelism is much higher than the serial case.
        trace = trace_of(
            """
            int out[256];
            void main() {
                int i;
                for (i = 0; i < 256; i = i + 1) { out[i] = i * i + i; }
                print_int(out[255]);
            }
            """
        )
        result = analyze(trace, AnalysisConfig(latency=LatencyTable.unit()))
        assert result.available_parallelism > 3.5

    def test_reduction_bound_by_fadd_latency(self):
        # s += a[i]: the fadd chain of length N*6 bounds the critical path
        # from below.
        trace = trace_of(
            """
            float a[128];
            void main() {
                float s = 0.0; int i;
                for (i = 0; i < 128; i = i + 1) { a[i] = float(i); }
                for (i = 0; i < 128; i = i + 1) { s = s + a[i]; }
                print_float(s);
            }
            """
        )
        result = analyze(trace, AnalysisConfig())
        assert result.critical_path_length >= 128 * 6

    def test_window_one_equals_serial_execution(self):
        trace = trace_of(
            "void main() { int i; int s = 0;"
            " for (i = 0; i < 50; i = i + 1) { s = s + i; } print_int(s); }"
        )
        unit = AnalysisConfig(latency=LatencyTable.unit(), window_size=1)
        result = analyze(trace, unit)
        # with unit latencies and W=1, every placed op gets its own level
        assert result.critical_path_length == result.placed_operations

    def test_three_implementations_agree_on_compiled_code(self):
        trace = trace_of(load_workload("xlispx").source(), cap=8000)
        for config in (
            AnalysisConfig(),
            AnalysisConfig.no_renaming(),
            AnalysisConfig(window_size=32),
        ):
            fast = analyze(trace, config)
            slow = reference_analyze(trace, config)
            ddg = build_ddg(trace, config)
            assert fast.critical_path_length == slow.critical_path_length
            assert fast.critical_path_length == ddg.critical_path_length
            assert fast.profile.counts == ddg.profile().counts


class TestPaperFindings:
    """The paper's headline qualitative results on our suite."""

    @pytest.fixture(scope="class")
    def traces(self):
        cap = 100_000
        names = ("xlispx", "matrix300x", "tomcatvx", "naskerx", "espressox", "eqntottx")
        return {name: load_workload(name).trace(max_instructions=cap) for name in names}

    def test_xlisp_least_parallel(self, traces):
        """The interpreter's serial abstract machine yields the least
        parallelism (paper section 4)."""
        xlisp = analyze(traces["xlispx"], AnalysisConfig()).available_parallelism
        for name in ("matrix300x", "tomcatvx", "naskerx", "eqntottx"):
            other = analyze(traces[name], AnalysisConfig()).available_parallelism
            assert xlisp < other

    def test_no_renaming_crushes_parallelism(self, traces):
        """Without renaming, every workload drops to single digits."""
        for name, trace in traces.items():
            result = analyze(trace, AnalysisConfig.no_renaming())
            assert result.available_parallelism < 10.0

    def test_stack_renaming_unlocks_fortran_kernels(self, traces):
        """matrix300/tomcatv need stack renaming on top of registers."""
        for name in ("matrix300x", "tomcatvx"):
            regs = analyze(traces[name], AnalysisConfig.registers_renamed())
            stack = analyze(traces[name], AnalysisConfig.registers_and_stack_renamed())
            assert stack.available_parallelism > 1.5 * regs.available_parallelism

    def test_memory_renaming_unlocks_espresso(self, traces):
        regs_stack = analyze(
            traces["espressox"], AnalysisConfig.registers_and_stack_renamed()
        )
        full = analyze(traces["espressox"], AnalysisConfig())
        assert full.available_parallelism > 2.0 * regs_stack.available_parallelism

    def test_nasker_insensitive_beyond_registers(self, traces):
        regs = analyze(traces["naskerx"], AnalysisConfig.registers_renamed())
        full = analyze(traces["naskerx"], AnalysisConfig())
        assert full.available_parallelism < 1.1 * regs.available_parallelism

    def test_modest_window_gives_modest_parallelism(self, traces):
        """W~100 suffices for single-digit-to-tens parallelism (paper's
        superscalar takeaway)."""
        for name, trace in traces.items():
            result = analyze(trace, AnalysisConfig(window_size=128))
            assert 1.5 < result.available_parallelism < 64.0

    def test_large_windows_required_for_full_parallelism(self, traces):
        """High-ILP workloads expose only a small fraction of their
        parallelism at W=1024 (paper Figure 8)."""
        trace = traces["matrix300x"]
        windowed = analyze(trace, AnalysisConfig(window_size=1024))
        unbounded = analyze(trace, AnalysisConfig())
        assert (
            windowed.available_parallelism < 0.5 * unbounded.available_parallelism
        )

    def test_parallelism_is_bursty(self, traces):
        """Figure 7: profiles alternate bursts and droughts."""
        result = analyze(traces["matrix300x"], AnalysisConfig())
        assert result.profile.burstiness() > 1.0
