"""Test package."""
