"""Syscall layer behaviour."""

import pytest

from repro.asm.assembler import assemble
from repro.cpu.errors import MachineError
from repro.cpu.machine import Machine


def run(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    result = machine.run(max_instructions=10_000)
    return machine, result


class TestOutput:
    def test_print_int(self):
        machine, result = run("li a0, 42\n li v0, 1\n syscall\n")
        assert result.output == [42]

    def test_print_float(self):
        machine, result = run("lfi f12, 2.5\n li v0, 2\n syscall\n")
        assert result.output == [2.5]

    def test_print_char(self):
        machine, result = run("li a0, 65\n li v0, 11\n syscall\n")
        assert result.output == ["A"]

    def test_output_order_preserved(self):
        machine, result = run(
            "li a0, 1\n li v0, 1\n syscall\n"
            "li a0, 2\n li v0, 1\n syscall\n"
        )
        assert result.output == [1, 2]


class TestInput:
    def test_read_int(self):
        machine, _ = run("li v0, 5\n syscall\n move t0, v0\n", int_inputs=[17])
        assert machine.regs[8] == 17

    def test_read_int_sequence(self):
        machine, result = run(
            "li v0, 5\n syscall\n move a0, v0\n li v0, 1\n syscall\n"
            "li v0, 5\n syscall\n move a0, v0\n li v0, 1\n syscall\n",
            int_inputs=[3, 4],
        )
        assert result.output == [3, 4]

    def test_read_float(self):
        machine, _ = run("li v0, 6\n syscall\n fmov f1, f0\n", float_inputs=[1.25])
        assert machine.regs[33] == 1.25

    def test_exhausted_input_raises(self):
        with pytest.raises(MachineError, match="input exhausted"):
            run("li v0, 5\n syscall\n")


class TestHeap:
    def test_sbrk_returns_consecutive_blocks(self):
        machine, _ = run(
            "li a0, 4\n li v0, 9\n syscall\n move t0, v0\n"
            "li a0, 8\n li v0, 9\n syscall\n move t1, v0\n"
        )
        first, second = machine.regs[8], machine.regs[9]
        assert second == first + 4

    def test_sbrk_starts_at_data_end(self):
        machine, _ = run(
            ".data\nv: .word 1, 2, 3\n.text\nmain: li a0, 1\n li v0, 9\n syscall\n move t0, v0\n"
        )
        assert machine.regs[8] == machine.program.data_end


class TestErrors:
    def test_unknown_syscall(self):
        with pytest.raises(MachineError, match="unknown syscall"):
            run("li v0, 77\n syscall\n")

    def test_trace_records_syscall_dest_for_read(self):
        machine, _ = run("li v0, 5\n syscall\n", int_inputs=[1])
        record = machine.trace.records[-1]
        assert record[2] == (2,)  # writes v0

    def test_trace_records_no_dest_for_print(self):
        machine, _ = run("li a0, 1\n li v0, 1\n syscall\n")
        record = machine.trace.records[-1]
        assert record[2] == ()
