"""Test package."""
