"""Interpreter semantics, opcode by opcode, plus tracing behaviour."""

import pytest

from repro.asm.assembler import assemble
from repro.cpu.errors import MachineError
from repro.cpu.machine import Machine, run_and_trace
from repro.isa.layout import STACK_TOP_WORDS
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.isa.registers import parse_register
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN


def run_asm(source, **kwargs):
    """Assemble, run, return the machine."""
    machine = Machine(assemble(source), **kwargs)
    machine.run(max_instructions=kwargs.pop("max_instructions", 100_000))
    return machine


def reg(machine, name):
    return machine.regs[parse_register(name)]


class TestIntegerArithmetic:
    def test_add_sub(self):
        m = run_asm("li t0, 7\n li t1, 3\n add t2, t0, t1\n sub t3, t0, t1\n")
        assert reg(m, "t2") == 10
        assert reg(m, "t3") == 4

    def test_mul(self):
        m = run_asm("li t0, -6\n li t1, 7\n mul t2, t0, t1\n")
        assert reg(m, "t2") == -42

    def test_div_truncates_toward_zero(self):
        m = run_asm(
            "li t0, -7\n li t1, 2\n div t2, t0, t1\n"
            "li t3, 7\n li t4, -2\n div t5, t3, t4\n"
        )
        assert reg(m, "t2") == -3  # C semantics, not Python floor
        assert reg(m, "t5") == -3

    def test_rem_sign_follows_dividend(self):
        m = run_asm("li t0, -7\n li t1, 2\n rem t2, t0, t1\n")
        assert reg(m, "t2") == -1

    def test_div_by_zero_raises(self):
        with pytest.raises(MachineError, match="division by zero"):
            run_asm("li t0, 1\n li t1, 0\n div t2, t0, t1\n")

    def test_bitwise(self):
        m = run_asm(
            "li t0, 12\n li t1, 10\n and t2, t0, t1\n or t3, t0, t1\n"
            "xor t4, t0, t1\n nor t5, t0, t1\n"
        )
        assert reg(m, "t2") == 8
        assert reg(m, "t3") == 14
        assert reg(m, "t4") == 6
        assert reg(m, "t5") == ~14

    def test_shifts(self):
        m = run_asm(
            "li t0, 5\n li t1, 2\n sll t2, t0, t1\n"
            "li t3, -8\n sra t4, t3, t1\n"
        )
        assert reg(m, "t2") == 20
        assert reg(m, "t4") == -2

    def test_srl_is_logical_on_32_bits(self):
        m = run_asm("li t0, -1\n li t1, 28\n srl t2, t0, t1\n")
        assert reg(m, "t2") == 0xF

    def test_comparisons(self):
        m = run_asm(
            "li t0, 3\n li t1, 5\n"
            "slt t2, t0, t1\n sle t3, t1, t1\n sgt t4, t0, t1\n"
            "sge t5, t1, t0\n seq t6, t0, t0\n sne t7, t0, t1\n"
        )
        assert (reg(m, "t2"), reg(m, "t3"), reg(m, "t4")) == (1, 1, 0)
        assert (reg(m, "t5"), reg(m, "t6"), reg(m, "t7")) == (1, 1, 1)

    def test_immediates(self):
        m = run_asm("li t0, 10\n addi t1, t0, -3\n muli t2, t0, 4\n slti t3, t0, 11\n")
        assert reg(m, "t1") == 7
        assert reg(m, "t2") == 40
        assert reg(m, "t3") == 1


class TestFloatingPoint:
    def test_arithmetic(self):
        m = run_asm(
            "lfi f0, 1.5\n lfi f1, 2.0\n fadd f2, f0, f1\n fsub f3, f0, f1\n"
            "fmul f4, f0, f1\n fdiv f5, f0, f1\n"
        )
        assert reg(m, "f2") == 3.5
        assert reg(m, "f3") == -0.5
        assert reg(m, "f4") == 3.0
        assert reg(m, "f5") == 0.75

    def test_sqrt(self):
        m = run_asm("lfi f0, 9.0\n fsqrt f1, f0\n")
        assert reg(m, "f1") == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(MachineError, match="sqrt of negative"):
            run_asm("lfi f0, -1.0\n fsqrt f1, f0\n")

    def test_fdiv_by_zero_raises(self):
        with pytest.raises(MachineError, match="division by zero"):
            run_asm("lfi f0, 1.0\n lfi f1, 0.0\n fdiv f2, f0, f1\n")

    def test_unary_ops(self):
        m = run_asm("lfi f0, -2.5\n fneg f1, f0\n fabs f2, f0\n fmov f3, f0\n")
        assert reg(m, "f1") == 2.5
        assert reg(m, "f2") == 2.5
        assert reg(m, "f3") == -2.5

    def test_compares_write_int_register(self):
        m = run_asm(
            "lfi f0, 1.0\n lfi f1, 2.0\n flt t0, f0, f1\n"
            "fle t1, f1, f1\n feq t2, f0, f1\n"
        )
        assert (reg(m, "t0"), reg(m, "t1"), reg(m, "t2")) == (1, 1, 0)

    def test_conversions(self):
        m = run_asm("li t0, 3\n cvtif f0, t0\n lfi f1, -2.7\n cvtfi t1, f1\n")
        assert reg(m, "f0") == 3.0
        assert reg(m, "t1") == -2  # truncation toward zero


class TestMemory:
    def test_store_load_round_trip(self):
        m = run_asm("li t0, 99\n li t1, 0x2000\n sw t0, 0(t1)\n lw t2, 0(t1)\n")
        assert reg(m, "t2") == 99

    def test_load_untouched_word_is_zero(self):
        m = run_asm("li t1, 0x3000\n lw t0, 4(t1)\n")
        assert reg(m, "t0") == 0

    def test_absolute_addressing_via_label(self):
        m = run_asm(".data\nv: .word 123\n.text\nmain: lw t0, v\n")
        assert reg(m, "t0") == 123

    def test_fp_memory(self):
        m = run_asm("lfi f0, 2.25\n li t0, 0x2000\n sf f0, 1(t0)\n lf f1, 1(t0)\n")
        assert reg(m, "f1") == 2.25

    def test_negative_address_raises(self):
        with pytest.raises(MachineError, match="negative address"):
            run_asm("li t0, -5\n lw t1, 0(t0)\n")

    def test_sp_initialized_to_stack_top(self):
        machine = Machine(assemble("nop\n"))
        assert reg(machine, "sp") == STACK_TOP_WORDS


class TestControlFlow:
    def test_conditional_branch_taken(self):
        m = run_asm("li t0, 1\n bnez t0, skip\n li t1, 99\nskip: li t2, 5\n")
        assert reg(m, "t1") == 0
        assert reg(m, "t2") == 5

    def test_conditional_branch_not_taken(self):
        m = run_asm("li t0, 0\n bnez t0, skip\n li t1, 99\nskip: li t2, 5\n")
        assert reg(m, "t1") == 99

    def test_two_source_branch(self):
        m = run_asm("li t0, 4\n li t1, 4\n beq t0, t1, eq\n li t2, 1\neq: nop\n")
        assert reg(m, "t2") == 0

    def test_loop_executes_expected_count(self):
        m = run_asm(
            "li t0, 0\n li t1, 10\nloop: addi t0, t0, 1\n bne t0, t1, loop\n"
        )
        assert reg(m, "t0") == 10

    def test_jal_links_and_jr_returns(self):
        m = run_asm(
            "main: jal func\n li t1, 7\n j end\nfunc: li t0, 3\n jr ra\nend: nop\n"
        )
        assert reg(m, "t0") == 3
        assert reg(m, "t1") == 7

    def test_jr_invalid_target_raises(self):
        with pytest.raises(MachineError, match="jr to invalid target"):
            run_asm("li r1, -3\n jr r1\n")

    def test_fall_off_end_reported(self):
        machine = Machine(assemble("nop\nnop\n"))
        result = machine.run()
        assert result.reason == "end"
        assert result.executed == 2


class TestLimitsAndExit:
    def test_instruction_limit(self):
        machine = Machine(assemble("loop: addi t0, t0, 1\n j loop\n"))
        result = machine.run(max_instructions=500)
        assert result.reason == "limit"
        assert result.executed == 500

    def test_exit_syscall(self):
        machine = Machine(assemble("li v0, 10\n li a0, 3\n syscall\n"))
        result = machine.run()
        assert result.reason == "exit"
        # exit code register was set before the syscall number overwrote v0?
        # order in source: v0 then a0 -> a0 carries the code.
        assert result.exit_code == 3

    def test_exit_counts_final_instruction(self):
        machine = Machine(assemble("li a0, 0\n li v0, 10\n syscall\n"))
        result = machine.run()
        assert result.executed == 3


class TestTracing:
    def test_register_op_record(self):
        m = run_asm("li t0, 1\n li t1, 2\n add t2, t0, t1\n")
        record = m.trace.records[2]
        assert record[0] == int(OpClass.IALU)
        assert record[1] == (parse_register("t0"), parse_register("t1"))
        assert record[2] == (parse_register("t2"),)

    def test_load_record_includes_memory_source(self):
        m = run_asm("li t1, 0x2000\n lw t0, 3(t1)\n")
        record = m.trace.records[1]
        assert record[0] == int(OpClass.LOAD)
        assert record[1] == (parse_register("t1"), MEM_BASE + 0x2003)

    def test_store_record_destination_is_memory(self):
        m = run_asm("li t0, 5\n li t1, 0x2000\n sw t0, 0(t1)\n")
        record = m.trace.records[2]
        assert record[0] == int(OpClass.STORE)
        assert record[2] == (MEM_BASE + 0x2000,)

    def test_branch_records_flags_and_pc(self):
        m = run_asm("li t0, 1\n bnez t0, tgt\n nop\ntgt: li t1, 0\n bnez t1, tgt\n nop\n")
        taken = m.trace.records[1]
        assert taken[3] == FLAG_CONDITIONAL | FLAG_TAKEN
        assert taken[4] == 1  # pc
        fall = m.trace.records[3]
        assert fall[3] == FLAG_CONDITIONAL

    def test_nop_not_traced(self):
        m = run_asm("nop\n li t0, 1\n")
        assert len(m.trace.records) == 1

    def test_untraced_machine_runs_without_records(self):
        machine = Machine(assemble("li t0, 1\n li t1, 2\n"), trace=False)
        machine.run()
        assert machine.trace is None

    def test_run_and_trace_helper(self):
        result, trace = run_and_trace(assemble("li t0, 1\n"))
        assert result.executed == 1
        assert len(trace) == 1

    def test_write_to_zero_register_rejected_at_compile(self):
        with pytest.raises(MachineError, match="writes r0"):
            Machine(assemble("li zero, 1\n"))
