"""Sparse memory and heap break."""

import pytest

from repro.cpu.errors import MachineError
from repro.cpu.memory import Memory
from repro.isa.layout import STACK_SEGMENT_FLOOR
from repro.trace.segments import DEFAULT_SEGMENTS


def make_memory(data=None, data_end=0x1100):
    return Memory(data or {}, data_end, DEFAULT_SEGMENTS)


class TestLoadStore:
    def test_initial_data_visible(self):
        memory = make_memory({0x1000: 7})
        assert memory.load(0x1000) == 7

    def test_untouched_reads_zero(self):
        assert make_memory().load(0x5000) == 0

    def test_store_then_load(self):
        memory = make_memory()
        memory.store(0x2000, 1.5)
        assert memory.load(0x2000) == 1.5

    def test_negative_load_raises(self):
        with pytest.raises(MachineError):
            make_memory().load(-1)

    def test_negative_store_raises(self):
        with pytest.raises(MachineError):
            make_memory().store(-1, 0)


class TestHeap:
    def test_brk_starts_at_data_end(self):
        memory = make_memory(data_end=0x1234)
        assert memory.sbrk(0) == 0x1234

    def test_sbrk_advances(self):
        memory = make_memory()
        first = memory.sbrk(10)
        second = memory.sbrk(5)
        assert second == first + 10

    def test_negative_sbrk_raises(self):
        with pytest.raises(MachineError):
            make_memory().sbrk(-1)

    def test_heap_collision_with_stack_segment_raises(self):
        memory = make_memory()
        with pytest.raises(MachineError, match="heap exhausted"):
            memory.sbrk(STACK_SEGMENT_FLOOR)
