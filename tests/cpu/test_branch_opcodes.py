"""Single-source branch opcodes and corner semantics."""

import pytest

from repro.asm.assembler import assemble
from repro.cpu.machine import Machine
from repro.isa.registers import parse_register


def run_asm(source):
    machine = Machine(assemble(source))
    machine.run(max_instructions=10_000)
    return machine


def taken(op, value):
    """Return True if `op` with the given register value branched."""
    machine = run_asm(
        f"li t0, {value}\n {op} t0, yes\n li t1, 0\n j end\nyes: li t1, 1\nend: nop\n"
    )
    return machine.regs[parse_register("t1")] == 1


class TestBranchConditions:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("blez", -1, True),
            ("blez", 0, True),
            ("blez", 1, False),
            ("bgtz", 1, True),
            ("bgtz", 0, False),
            ("bltz", -1, True),
            ("bltz", 0, False),
            ("bgez", 0, True),
            ("bgez", -1, False),
            ("beqz", 0, True),
            ("beqz", 5, False),
            ("bnez", 5, True),
            ("bnez", 0, False),
        ],
    )
    def test_condition(self, op, value, expected):
        assert taken(op, value) is expected


class TestBranchLoops:
    def test_countdown_with_bgtz(self):
        machine = run_asm(
            "li t0, 5\n li t1, 0\nloop: addi t1, t1, 1\n addi t0, t0, -1\n"
            " bgtz t0, loop\n"
        )
        assert machine.regs[parse_register("t1")] == 5

    def test_backward_and_forward_mix(self):
        machine = run_asm(
            "li t0, 0\nhead: addi t0, t0, 1\n slti t2, t0, 3\n"
            " bnez t2, head\n beqz t2, done\n li t0, 99\ndone: nop\n"
        )
        assert machine.regs[parse_register("t0")] == 3


class TestImmediateEdges:
    def test_negative_float_immediate(self):
        machine = run_asm("lfi f0, -2.5\n")
        assert machine.regs[32] == -2.5

    def test_large_integer_immediate(self):
        machine = run_asm("li t0, 123456789\n muli t1, t0, 1000\n")
        assert machine.regs[parse_register("t1")] == 123456789000

    def test_srai_and_srli_differ_on_negative(self):
        machine = run_asm("li t0, -16\n srai t1, t0, 2\n srli t2, t0, 2\n")
        assert machine.regs[parse_register("t1")] == -4
        assert machine.regs[parse_register("t2")] == (0xFFFFFFF0 >> 2)
