"""Test package."""
