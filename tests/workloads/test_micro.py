"""Micro-kernels: analytically derivable critical paths through the whole
assemble-simulate-analyze stack."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.workloads.micro import MICRO_KERNELS, N, micro_program, micro_trace


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestExecution:
    @pytest.mark.parametrize("name", sorted(MICRO_KERNELS))
    def test_assembles_and_runs_to_exit(self, name):
        from repro.cpu.machine import Machine

        machine = Machine(micro_program(name))
        result = machine.run(max_instructions=200_000)
        assert result.reason == "exit"

    def test_fib_value(self):
        from repro.cpu.machine import Machine

        machine = Machine(micro_program("fib"))
        result = machine.run(max_instructions=200_000)
        assert result.output == [144]  # fib(12)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown micro kernel"):
            micro_program("bogosort")


class TestAnalyticCriticalPaths:
    def test_chase_is_a_serial_load_chain(self):
        """Each chase load depends on the previous: the chase phase alone
        contributes ~N levels even with unit latencies and full renaming."""
        trace = micro_trace("chase")
        result = analyze(trace, unit())
        assert result.critical_path_length >= N
        # load latency scales the chain linearly
        slow_loads = AnalysisConfig(
            latency=LatencyTable.unit().with_overrides(LOAD=4)
        )
        slowed = analyze(trace, slow_loads)
        assert slowed.critical_path_length >= 4 * N

    def test_reduction_bound_by_fadd_chain(self):
        trace = micro_trace("reduction")
        result = analyze(trace, AnalysisConfig())  # Table 1: FADD = 6
        assert result.critical_path_length >= 6 * N

    def test_parallel8_counter_bound(self):
        """Eight independent chains advance together with the counter: every
        recurrence is one addi per iteration, so CP ~ N and the eight
        accumulators ride along in parallel."""
        trace = micro_trace("parallel8")
        result = analyze(trace, unit())
        assert result.critical_path_length == pytest.approx(N, abs=12)
        assert result.available_parallelism > 4.0

    def test_saxpy_much_more_parallel_than_chase(self):
        saxpy = analyze(micro_trace("saxpy"), unit())
        chase = analyze(micro_trace("chase"), unit())
        assert saxpy.available_parallelism > 2 * chase.available_parallelism

    def test_fib_sp_chain_bounds_parallelism(self):
        """Dynamic frames thread a *true* sp-dependency chain through every
        call: even with full renaming the recursion's tree parallelism is
        buried (the cc1/xlisp mechanism), and no storage renaming can help
        because the chain is RAW, not WAR."""
        trace = micro_trace("fib")
        renamed = analyze(trace, unit())
        kept = analyze(trace, unit(rename_stack=False))
        # fib(12) makes fib(13)-1 = 232 recursive (frame-adjusting) calls;
        # each contributes two sp-chain levels (addi -3 / addi +3), so the
        # critical path sits just above 2 * 232 regardless of renaming.
        assert 450 <= renamed.critical_path_length <= 530
        assert kept.critical_path_length == renamed.critical_path_length
        assert renamed.available_parallelism < 10.0
