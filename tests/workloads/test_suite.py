"""Workload suite integrity."""

import pytest

from repro.trace.stats import compute_stats
from repro.workloads.suite import SUITE_NAMES, all_workloads, load_workload

ANALOGS = {
    "cc1",
    "doduc",
    "eqntott",
    "espresso",
    "fpppp",
    "matrix300",
    "nasker",
    "spice2g6",
    "tomcatv",
    "xlisp",
}


class TestRegistry:
    def test_ten_workloads(self):
        assert len(SUITE_NAMES) == 10

    def test_covers_every_spec_benchmark(self):
        assert {w.analog_of for w in all_workloads()} == ANALOGS

    def test_lookup_by_name(self):
        assert load_workload("xlispx").analog_of == "xlisp"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load_workload("gcc")

    def test_fortran_analogs_use_static_frames(self):
        static = {w.name for w in all_workloads() if w.static_frames}
        assert static == {
            "doducx", "fppppx", "matrix300x", "naskerx", "spice2g6x", "tomcatvx",
        }

    def test_categories_match_paper_types(self):
        categories = {w.name: w.category for w in all_workloads()}
        assert categories["cc1x"] == "int"
        assert categories["matrix300x"] == "fp"
        assert categories["spice2g6x"] == "int+fp"


class TestCompilation:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_compiles(self, name):
        program = load_workload(name).program()
        assert len(program.instructions) > 50

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_program_cached(self, name):
        workload = load_workload(name)
        assert workload.program() is workload.program()


class TestExecution:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_runs_and_traces(self, name, workload_traces):
        trace = workload_traces[name]
        assert len(trace) == 60_000

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_trace_mix_sane(self, name, workload_traces):
        stats = compute_stats(workload_traces[name])
        assert stats.placed > 0.5 * stats.total
        assert 0 < stats.branches < 0.4 * stats.total
        assert stats.loads > 0
        assert stats.stores > 0

    def test_fp_workloads_do_fp(self, workload_traces):
        for name in ("doducx", "fppppx", "matrix300x", "naskerx", "tomcatvx"):
            assert compute_stats(workload_traces[name]).fp_operations > 0

    def test_int_workloads_do_no_fp(self, workload_traces):
        for name in ("cc1x", "eqntottx", "xlispx"):
            assert compute_stats(workload_traces[name]).fp_operations == 0

    def test_deterministic(self):
        workload = load_workload("cc1x")
        first = workload.trace(max_instructions=5000)
        second = workload.trace(max_instructions=5000)
        assert first.records == second.records

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_workloads_make_syscalls(self, name):
        # every workload must give the System Calls Stall switch something
        # to firewall within the default analysis window
        trace = load_workload(name).trace(max_instructions=250_000)
        assert compute_stats(trace).syscalls > 0

    def test_source_accessible(self):
        source = load_workload("matrix300x").source()
        assert "dot" in source

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_pinned_outputs(self, name):
        """Functional correctness of the whole compile-and-simulate stack:
        the first outputs of every workload are pinned."""
        workload = load_workload(name)
        assert workload.expected_output_head, name
        result, _ = workload.run(max_instructions=250_000, trace=False)
        head = tuple(result.output[: len(workload.expected_output_head)])
        for got, want in zip(head, workload.expected_output_head):
            if isinstance(want, float):
                assert got == pytest.approx(want, rel=1e-12), name
            else:
                assert got == want, name
