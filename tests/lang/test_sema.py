"""MiniC semantic analysis."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.sema import analyze_ast


def check(source):
    return analyze_ast(parse(source))


def check_main(body, prelude=""):
    return check(prelude + " void main() { " + body + " }")


class TestProgramStructure:
    def test_main_required(self):
        with pytest.raises(CompileError, match="no main"):
            check("int f() { return 1; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(CompileError, match="no parameters"):
            check("void main(int x) {}")

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="duplicate global"):
            check("int x; int x; void main() {}")

    def test_duplicate_function(self):
        with pytest.raises(CompileError, match="duplicate function"):
            check("int f() { return 1; } int f() { return 2; } void main() {}")

    def test_global_shadowing_builtin_rejected(self):
        with pytest.raises(CompileError, match="duplicate"):
            check("int sqrt; void main() {}")

    def test_function_colliding_with_global(self):
        with pytest.raises(CompileError, match="collides"):
            check("int f; int f() { return 1; } void main() {}")

    def test_too_many_initializers(self):
        with pytest.raises(CompileError, match="too many initializers"):
            check("int a[2] = {1, 2, 3}; void main() {}")


class TestScoping:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            check_main("x = 1;")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            check_main("g();")

    def test_inner_scope_sees_outer(self):
        check_main("int x; { x = 1; }")

    def test_block_scope_expires(self):
        with pytest.raises(CompileError, match="undefined variable"):
            check_main("{ int x; } x = 1;")

    def test_duplicate_in_same_scope(self):
        with pytest.raises(CompileError, match="duplicate declaration"):
            check_main("int x; int x;")

    def test_shadowing_in_inner_scope_allowed(self):
        check_main("int x; { int x; x = 2; }")

    def test_global_visible_in_function(self):
        check("int g; void main() { g = 1; }")

    def test_for_init_scoped_to_loop(self):
        with pytest.raises(CompileError, match="undefined variable"):
            check_main("for (int i = 0; i < 3; i = i + 1) {} i = 5;")


class TestTypes:
    def test_arithmetic_promotes_to_float(self):
        program = check_main("float f; f = 1 + 2.0;")
        assign = program.functions[0].body.statements[1]
        assert assign.value.type == "float"

    def test_int_assignment_from_float_gets_cast(self):
        program = check_main("int i; i = 2.5;")
        assign = program.functions[0].body.statements[1]
        assert isinstance(assign.value, ast.Cast)
        assert assign.value.type == "int"

    def test_comparison_yields_int(self):
        program = check_main("int b; b = 1.5 < 2.5;")
        assign = program.functions[0].body.statements[1]
        assert assign.value.type == "int"

    def test_mod_requires_int(self):
        with pytest.raises(CompileError, match="must be int"):
            check_main("float f; f = 1.0 % 2.0;")

    def test_shift_requires_int(self):
        with pytest.raises(CompileError, match="must be int"):
            check_main("int i; i = 1 << 2.0;")

    def test_logical_requires_int(self):
        with pytest.raises(CompileError, match="must be int"):
            check_main("int i; i = 1.0 && 1;")

    def test_condition_must_be_int(self):
        with pytest.raises(CompileError, match="must be int"):
            check_main("if (1.5) {}")

    def test_array_index_must_be_int(self):
        with pytest.raises(CompileError, match="array index"):
            check_main("int a[4]; a[1.5] = 0;", prelude="")

    def test_index_count_must_match(self):
        with pytest.raises(CompileError, match="needs 2 indices"):
            check_main("int g[2][2]; g[0] = 1;")

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="is not an array"):
            check_main("int x; x[0] = 1;")

    def test_bare_array_reference_rejected(self):
        with pytest.raises(CompileError, match="must be indexed"):
            check_main("int a[4]; int x; x = a;")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(CompileError, match="as a whole"):
            check_main("int a[4]; a = 1;")

    def test_unary_not_requires_int(self):
        with pytest.raises(CompileError, match="must be int"):
            check_main("int i; i = !1.5;")

    def test_unary_minus_preserves_type(self):
        program = check_main("float f; f = -2.5;")
        assign = program.functions[0].body.statements[1]
        assert assign.value.type == "float"


class TestCallsAndReturns:
    def test_arity_checked(self):
        with pytest.raises(CompileError, match="expects 2"):
            check("int add(int a, int b) { return a + b; } void main() { add(1); }")

    def test_argument_conversion_inserted(self):
        program = check(
            "float f(float x) { return x; } void main() { float y; y = f(3); }"
        )
        call = program.functions[1].body.statements[1].value
        assert isinstance(call.args[0], ast.Cast)

    def test_builtin_signature_checked(self):
        with pytest.raises(CompileError, match="expects 1"):
            check_main("print_int();")

    def test_builtin_marks_call(self):
        program = check_main("print_int(3);")
        call = program.functions[0].body.statements[0].expr
        assert call.builtin is True

    def test_void_return_with_value_rejected(self):
        with pytest.raises(CompileError, match="returns void"):
            check("void f() { return 3; } void main() {}")

    def test_missing_return_value_rejected(self):
        with pytest.raises(CompileError, match="must return"):
            check("int f() { return; } void main() {}")

    def test_return_value_converted(self):
        program = check("float f() { return 2; } void main() {}")
        ret = program.functions[0].body.statements[0]
        assert isinstance(ret.value, ast.Cast)

    def test_void_call_as_value_rejected_later(self):
        # sema types the call as void; using it in arithmetic fails
        with pytest.raises(CompileError):
            check("void f() {} void main() { int x; x = f() + 1; }")


class TestLoops:
    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            check_main("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue outside"):
            check_main("continue;")

    def test_break_inside_nested_if_in_loop_ok(self):
        check_main("while (1) { if (1) { break; } }")


class TestAnnotations:
    def test_function_symbols_collected(self):
        program = check("int f(int a) { int b; float c; return a; } void main() {}")
        func = program.functions[0]
        assert [s.name for s in func.symbols] == ["a", "b", "c"]
        assert func.symbols[0].kind == "param"

    def test_makes_calls_flags(self):
        program = check(
            "int f() { return 1; } void main() { int x; x = f(); }"
        )
        by_name = {f.name: f for f in program.functions}
        assert by_name["main"].makes_calls
        assert not by_name["f"].makes_calls

    def test_builtins_do_not_set_makes_calls(self):
        program = check_main("print_int(1);")
        assert not program.functions[0].makes_calls
