"""Test package."""
