"""Code-generation details visible in the emitted assembly."""

import re

from repro.lang.compiler import compile_to_assembly


class TestAddressing:
    def test_power_of_two_row_width_uses_shift(self):
        asm = compile_to_assembly(
            "int g[4][8]; void main() { int i; g[i][0] = 1; }"
        )
        assert "slli" in asm
        assert "muli" not in asm

    def test_odd_row_width_uses_multiply(self):
        asm = compile_to_assembly(
            "int g[4][7]; void main() { int i; g[i][0] = 1; }"
        )
        assert "muli" in asm

    def test_global_scalar_uses_absolute_addressing(self):
        asm = compile_to_assembly("int x; void main() { x = 3; }")
        assert re.search(r"sw t\d, g_x\b", asm)

    def test_global_array_indexed_through_label(self):
        asm = compile_to_assembly("int a[8]; void main() { int i; a[i] = 1; }")
        # the index register (here the variable's home) bases off the label
        assert re.search(r"sw t\d, g_a\([st]\d\)", asm)

    def test_local_array_indexed_off_sp(self):
        asm = compile_to_assembly("void main() { int a[8]; int i; a[i] = 1; }")
        assert re.search(r"add t\d, sp, ", asm)


class TestFrames:
    def test_leaf_function_in_static_mode_saves_nothing(self):
        asm = compile_to_assembly(
            "int f(int x) { int y = x + 1; return y; } void main() { f(1); }",
            static_frames=True,
        )
        body = asm.split("fn_f:")[1].split("fn_main:")[0]
        assert "sw s" not in body  # no callee-saved traffic
        assert "addi sp" not in body  # sp untouched

    def test_dynamic_mode_adjusts_sp(self):
        asm = compile_to_assembly(
            "int f(int x) { int y = x + 1; return y; } void main() { f(1); }",
            static_frames=False,
        )
        body = asm.split("fn_f:")[1].split("fn_main:")[0]
        assert "addi sp, sp, -" in body

    def test_static_mode_argument_block_stores(self):
        asm = compile_to_assembly(
            "int f(int x, int y) { return x + y; } void main() { f(1, 2); }",
            static_frames=True,
        )
        main_body = asm.split("fn_main:")[1]
        # caller writes both arguments to the callee's fixed block
        assert len(re.findall(r"sw t\d, -\d+\(sp\)", main_body)) >= 2
        assert "move a0" not in main_body

    def test_dynamic_mode_register_arguments(self):
        asm = compile_to_assembly(
            "int f(int x, int y) { return x + y; } void main() { f(1, 2); }",
            static_frames=False,
        )
        main_body = asm.split("fn_main:")[1]
        assert "move a0," in main_body
        assert "move a1," in main_body

    def test_ra_saved_only_when_calling(self):
        asm = compile_to_assembly(
            "int leaf() { return 1; } void main() { leaf(); }"
        )
        leaf_body = asm.split("fn_leaf:")[1].split("fn_main:")[0]
        main_body = asm.split("fn_main:")[1]
        assert "sw ra" not in leaf_body
        assert "sw ra" in main_body

    def test_builtins_do_not_force_ra_save(self):
        asm = compile_to_assembly("void main() { print_int(1); }")
        assert "sw ra" not in asm


class TestStatementMarkers:
    def test_every_statement_tagged(self):
        asm = compile_to_assembly(
            """
            void main() {
                int a = 1;
                int b = 2;
                if (a < b) { print_int(a); }
                while (a < b) { a = a + 1; }
            }
            """
        )
        markers = re.findall(r"\.stmt (\d+)", asm)
        assert len(set(markers)) >= 5
        # ids are globally unique and increasing
        assert [int(m) for m in markers] == sorted(int(m) for m in markers)


class TestDataSegment:
    def test_float_globals_default_to_zero(self):
        asm = compile_to_assembly("float f; void main() { print_float(f); }")
        assert "g_f: .float 0.0" in asm

    def test_negative_initializer(self):
        asm = compile_to_assembly("int x = -5; void main() {}")
        assert "g_x: .word -5" in asm

    def test_partial_array_init_padded(self):
        asm = compile_to_assembly("int a[10] = {1, 2, 3}; void main() {}")
        assert ".word 1, 2, 3" in asm
        assert ".space 7" in asm
