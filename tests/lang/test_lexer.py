"""MiniC lexer."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = kinds("int foo while whiled")
        assert tokens == [
            ("kw", "int"),
            ("ident", "foo"),
            ("kw", "while"),
            ("ident", "whiled"),
        ]

    def test_integer_literals(self):
        tokens = tokenize("42 0x1F 0")
        assert [t.value for t in tokens[:-1]] == [42, 31, 0]

    def test_float_literals(self):
        tokens = tokenize("1.5 0.25 2e3 1.5e-2 .5")
        assert [t.value for t in tokens[:-1]] == [1.5, 0.25, 2000.0, 0.015, 0.5]

    def test_integer_not_mistaken_for_float(self):
        token = tokenize("7")[0]
        assert token.kind == "int"

    def test_multi_char_operators_maximal_munch(self):
        tokens = kinds("a<=b<<c&&d")
        ops = [text for kind, text in tokens if kind == "op"]
        assert ops == ["<=", "<<", "&&"]

    def test_all_single_operators(self):
        for op in "+-*/%<>=!~&|^(){}[];,":
            assert tokenize(op)[0].text == op

    def test_eof_token_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert tokenize("_foo_1")[0].text == "_foo_1"


class TestCommentsAndLines:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("/* oops")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_block_comment_advances_line_count(self):
        tokens = tokenize("/* 1\n2\n3 */ x")
        assert tokens[0].line == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_carries_line(self):
        with pytest.raises(CompileError, match="line 2"):
            tokenize("ok\n@")
