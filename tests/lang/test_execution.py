"""Compile-and-run functional tests: MiniC -> asm -> simulator."""

import pytest

from repro.lang.compiler import compile_source, compile_to_assembly
from repro.lang.errors import CompileError


def outputs(compile_and_run, source, **kwargs):
    result, _ = compile_and_run(source, **kwargs)
    assert result.reason == "exit", result
    return result.output


class TestArithmetic:
    def test_integer_expression(self, compile_and_run):
        src = "void main() { print_int((3 + 4) * 2 - 10 / 3); }"
        assert outputs(compile_and_run, src) == [11]

    def test_c_division_semantics(self, compile_and_run):
        src = "void main() { print_int(-7 / 2); print_int(-7 % 2); }"
        assert outputs(compile_and_run, src) == [-3, -1]

    def test_bitwise_and_shift(self, compile_and_run):
        src = "void main() { print_int((12 & 10) | (1 << 4)); print_int(~0); }"
        assert outputs(compile_and_run, src) == [24, -1]

    def test_float_expression(self, compile_and_run):
        src = "void main() { print_float(1.5 * 2.0 + 0.25); }"
        assert outputs(compile_and_run, src) == [3.25]

    def test_mixed_promotion(self, compile_and_run):
        src = "void main() { print_float(3 / 2 + 0.5); print_float(3 / 2.0); }"
        assert outputs(compile_and_run, src) == [1.5, 1.5]

    def test_casts(self, compile_and_run):
        src = "void main() { print_int(int(2.9)); print_int(int(-2.9)); print_float(float(7)); }"
        assert outputs(compile_and_run, src) == [2, -2, 7.0]

    def test_sqrt_builtin(self, compile_and_run):
        src = "void main() { print_float(sqrt(16.0)); }"
        assert outputs(compile_and_run, src) == [4.0]

    def test_comparisons(self, compile_and_run):
        src = """
        void main() {
            print_int(3 < 4); print_int(4 <= 3); print_int(2.5 > 2.0);
            print_int(1 == 1); print_int(1 != 1); print_int(2.0 >= 3.0);
        }
        """
        assert outputs(compile_and_run, src) == [1, 0, 1, 1, 0, 0]

    def test_unary_operators(self, compile_and_run):
        src = "void main() { print_int(-(3)); print_int(!0); print_int(!7); print_float(-(1.5)); }"
        assert outputs(compile_and_run, src) == [-3, 1, 0, -1.5]


class TestControlFlow:
    def test_if_else_chains(self, compile_and_run):
        src = """
        void main() {
            int x = 5;
            if (x > 10) { print_int(1); }
            else { if (x > 3) { print_int(2); } else { print_int(3); } }
        }
        """
        assert outputs(compile_and_run, src) == [2]

    def test_while_loop(self, compile_and_run):
        src = """
        void main() {
            int i = 0; int s = 0;
            while (i < 10) { s = s + i; i = i + 1; }
            print_int(s);
        }
        """
        assert outputs(compile_and_run, src) == [45]

    def test_for_loop_with_break_continue(self, compile_and_run):
        src = """
        void main() {
            int i; int s = 0;
            for (i = 0; i < 100; i = i + 1) {
                if (i == 7) { break; }
                if (i % 2 == 0) { continue; }
                s = s + i;
            }
            print_int(s); print_int(i);
        }
        """
        assert outputs(compile_and_run, src) == [1 + 3 + 5, 7]

    def test_nested_loops(self, compile_and_run):
        src = """
        void main() {
            int i; int j; int c = 0;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j <= i; j = j + 1) { c = c + 1; }
            }
            print_int(c);
        }
        """
        assert outputs(compile_and_run, src) == [10]

    def test_short_circuit_and(self, compile_and_run):
        # (x != 0 && 10 / x > 1) must not divide when x == 0.
        src = """
        int x = 0;
        void main() {
            if (x != 0 && 10 / x > 1) { print_int(1); } else { print_int(0); }
            x = 4;
            if (x != 0 && 10 / x > 1) { print_int(1); } else { print_int(0); }
        }
        """
        assert outputs(compile_and_run, src) == [0, 1]

    def test_short_circuit_or(self, compile_and_run):
        src = """
        int x = 0;
        void main() {
            if (x == 0 || 10 / x > 1) { print_int(1); }
            print_int((0 || 0) + (1 || 0) * 10);
        }
        """
        assert outputs(compile_and_run, src) == [1, 10]

    def test_logical_result_normalized(self, compile_and_run):
        src = "void main() { print_int(5 && 9); print_int(0 || 7); }"
        assert outputs(compile_and_run, src) == [1, 1]


class TestVariablesAndArrays:
    def test_globals_with_initializers(self, compile_and_run):
        src = """
        int a = 3; float b = 1.5; int t[4] = {9, 8};
        void main() { print_int(a); print_float(b); print_int(t[0] + t[1] + t[2]); }
        """
        assert outputs(compile_and_run, src) == [3, 1.5, 17]

    def test_global_2d_array(self, compile_and_run):
        src = """
        int g[3][4];
        void main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) { g[i][j] = i * 10 + j; }
            }
            print_int(g[2][3]); print_int(g[0][1]);
        }
        """
        assert outputs(compile_and_run, src) == [23, 1]

    def test_local_arrays_on_stack(self, compile_and_run):
        src = """
        void main() {
            float acc[16];
            int i;
            for (i = 0; i < 16; i = i + 1) { acc[i] = float(i) * 0.5; }
            print_float(acc[15] + acc[1]);
        }
        """
        assert outputs(compile_and_run, src) == [8.0]

    def test_local_2d_array(self, compile_and_run):
        src = """
        void main() {
            int m[4][4];
            int i;
            for (i = 0; i < 4; i = i + 1) { m[i][i] = i + 1; }
            print_int(m[3][3] * m[2][2]);
        }
        """
        assert outputs(compile_and_run, src) == [12]

    def test_many_locals_overflow_to_frame(self, compile_and_run):
        # more than 8 int locals: the later ones live in frame slots
        names = [f"v{i}" for i in range(12)]
        decls = " ".join(f"int {n} = {i};" for i, n in enumerate(names))
        total = " + ".join(names)
        src = f"void main() {{ {decls} print_int({total}); }}"
        assert outputs(compile_and_run, src) == [sum(range(12))]


class TestFunctions:
    def test_call_with_int_and_float_args(self, compile_and_run):
        src = """
        float scale(int n, float f) { return float(n) * f; }
        void main() { print_float(scale(4, 2.5)); }
        """
        assert outputs(compile_and_run, src) == [10.0]

    def test_nested_calls(self, compile_and_run):
        src = """
        int inc(int x) { return x + 1; }
        void main() { print_int(inc(inc(inc(0)))); }
        """
        assert outputs(compile_and_run, src) == [3]

    def test_recursion_dynamic_frames(self, compile_and_run):
        src = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        void main() { print_int(fact(6)); }
        """
        assert outputs(compile_and_run, src) == [720]

    def test_mutual_recursion(self, compile_and_run):
        src = """
        int is_odd(int n);
        """
        # MiniC has no prototypes; use a single recursive helper instead.
        src = """
        int parity(int n, int bit) {
            if (n == 0) { return bit; }
            return parity(n - 1, 1 - bit);
        }
        void main() { print_int(parity(9, 0)); }
        """
        assert outputs(compile_and_run, src) == [1]

    def test_locals_preserved_across_calls(self, compile_and_run):
        src = """
        int clobber(int x) { int a = 9; int b = 8; return a + b + x; }
        void main() {
            int keep = 42; int other = 7;
            print_int(clobber(1));
            print_int(keep + other);
        }
        """
        assert outputs(compile_and_run, src) == [18, 49]

    def test_four_int_args_max(self, compile_and_run):
        src = """
        int sum4(int a, int b, int c, int d) { return a + b + c + d; }
        void main() { print_int(sum4(1, 2, 3, 4)); }
        """
        assert outputs(compile_and_run, src) == [10]

    def test_main_return_code(self, compile_and_run):
        result, _ = compile_and_run("int main() { return 17; }")
        assert result.exit_code == 17

    def test_int_main_returning_value(self, compile_and_run):
        result, _ = compile_and_run("void main() { }")
        assert result.exit_code == 0


class TestExpressionsUnderPressure:
    def test_deep_int_expression_spills(self, compile_and_run):
        # balanced tree deeper than the 10-register temp pool
        leaf = ["(1 + %d)" % i for i in range(16)]
        while len(leaf) > 1:
            leaf = [f"({a} * 1 + {b})" for a, b in zip(leaf[::2], leaf[1::2])]
        src = f"void main() {{ print_int({leaf[0]}); }}"
        assert outputs(compile_and_run, src) == [sum(1 + i for i in range(16))]

    def test_deep_float_expression_spills(self, compile_and_run):
        leaf = [f"({i}.0 + 0.5)" for i in range(16)]
        while len(leaf) > 1:
            leaf = [f"({a} + {b})" for a, b in zip(leaf[::2], leaf[1::2])]
        src = f"void main() {{ print_float({leaf[0]}); }}"
        assert outputs(compile_and_run, src) == [sum(i + 0.5 for i in range(16))]

    def test_call_inside_deep_expression(self, compile_and_run):
        src = """
        int f(int x) { return x * 2; }
        void main() {
            print_int(1 + f(2) + (3 + f(4) * (5 + f(6))));
        }
        """
        assert outputs(compile_and_run, src) == [1 + 4 + (3 + 8 * (5 + 12))]


class TestStaticFrames:
    SOURCES = [
        """
        float dot(int i) { float s = 0.0; int k;
            for (k = 0; k < 4; k = k + 1) { s = s + float(i + k); } return s; }
        void main() { print_float(dot(1) + dot(2)); }
        """,
        """
        int g[4];
        int work(int a, int b) { int t = a * b; return t + 1; }
        void main() {
            int i;
            for (i = 0; i < 4; i = i + 1) { g[i] = work(i, i + 1); }
            print_int(g[0] + g[1] + g[2] + g[3]);
        }
        """,
    ]

    @pytest.mark.parametrize("index", range(len(SOURCES)))
    def test_static_and_dynamic_agree(self, compile_and_run, index):
        source = self.SOURCES[index]
        dynamic, _ = compile_and_run(source, static_frames=False)
        static, _ = compile_and_run(source, static_frames=True)
        assert dynamic.output == static.output

    def test_static_frames_never_touch_sp(self):
        program = compile_source(self.SOURCES[0], static_frames=True)
        for instr in program.instructions:
            assert not (instr.op in ("addi", "move", "li") and instr.dst == 29), instr

    def test_workload_outputs_match_across_frame_modes(self, compile_and_run):
        from repro.workloads.suite import load_workload

        source = load_workload("doducx").source()
        dynamic, _ = compile_and_run(source, static_frames=False, max_instructions=400_000)
        static, _ = compile_and_run(source, static_frames=True, max_instructions=400_000)
        assert dynamic.output == static.output


class TestDiagnostics:
    def test_too_many_int_arguments(self):
        src = """
        int f(int a, int b, int c, int d) { return a; }
        void main() { f(1, 2, 3, 4); }
        """
        compile_to_assembly(src)  # exactly four is fine
        src5 = """
        int f(int a, int b, int c, int d, int e) { return a; }
        void main() { f(1, 2, 3, 4, 5); }
        """
        with pytest.raises(CompileError, match="max 4"):
            compile_to_assembly(src5)

    def test_stmt_markers_emitted(self):
        asm = compile_to_assembly("void main() { int x = 1; print_int(x); }")
        assert ".stmt 0" in asm
        assert ".stmt 1" in asm
