"""Differential testing: random MiniC expressions vs a Python oracle.

Hypothesis generates random integer expression trees; each is compiled,
assembled, executed on the simulator, and compared against direct Python
evaluation with C semantics (truncating division). Any disagreement
anywhere in the lexer/parser/sema/codegen/assembler/machine stack fails.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.machine import Machine
from repro.lang.compiler import compile_source

#: Variable environment baked into every generated program.
ENV = {"a": 7, "b": -3, "c": 12}


def c_div(x, y):
    q = abs(x) // abs(y)
    return q if (x < 0) == (y < 0) else -q


def c_rem(x, y):
    return x - c_div(x, y) * y


class Node:
    """(text, value) pair for a generated expression."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


@st.composite
def int_exprs(draw, depth=0):
    """Random integer expression with its oracle value."""
    if depth >= 4 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            literal = draw(st.integers(-50, 50))
            if literal < 0:
                return Node(f"(0 - {-literal})", literal)
            return Node(str(literal), literal)
        name = draw(st.sampled_from(sorted(ENV)))
        return Node(name, ENV[name])
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%", "<", "<=", "==", "!="]))
    if op == "+":
        return Node(f"({left.text} + {right.text})", left.value + right.value)
    if op == "-":
        return Node(f"({left.text} - {right.text})", left.value - right.value)
    if op == "*":
        return Node(f"({left.text} * {right.text})", left.value * right.value)
    if op == "&":
        return Node(f"({left.text} & {right.text})", left.value & right.value)
    if op == "|":
        return Node(f"({left.text} | {right.text})", left.value | right.value)
    if op == "^":
        return Node(f"({left.text} ^ {right.text})", left.value ^ right.value)
    if op == "<<":
        shift = draw(st.integers(0, 8))
        return Node(f"({left.text} << {shift})", left.value << shift)
    if op == ">>":
        shift = draw(st.integers(0, 8))
        return Node(f"({left.text} >> {shift})", left.value >> shift)
    if op == "/":
        divisor = draw(st.integers(1, 9))
        sign = draw(st.sampled_from([1, -1]))
        if sign < 0:
            return Node(f"({left.text} / (0 - {divisor}))", c_div(left.value, -divisor))
        return Node(f"({left.text} / {divisor})", c_div(left.value, divisor))
    if op == "%":
        divisor = draw(st.integers(1, 9))
        return Node(f"({left.text} % {divisor})", c_rem(left.value, divisor))
    if op == "<":
        return Node(f"({left.text} < {right.text})", int(left.value < right.value))
    if op == "<=":
        return Node(f"({left.text} <= {right.text})", int(left.value <= right.value))
    if op == "==":
        return Node(f"({left.text} == {right.text})", int(left.value == right.value))
    return Node(f"({left.text} != {right.text})", int(left.value != right.value))


def run_program(expr_text):
    source = (
        "void main() { "
        + " ".join(f"int {name} = {value};" for name, value in sorted(ENV.items()))
        + f" print_int({expr_text}); }}"
    )
    machine = Machine(compile_source(source))
    result = machine.run(max_instructions=100_000)
    assert result.reason == "exit"
    return result.output[0]


@settings(max_examples=120, deadline=None)
@given(expr=int_exprs())
def test_integer_expressions_match_oracle(expr):
    assert run_program(expr.text) == expr.value


@settings(max_examples=80, deadline=None)
@given(expr=int_exprs())
def test_optimizer_preserves_expression_values(expr):
    """The optimizer folds most of these trees away entirely; the value
    must survive regardless."""
    source = (
        "void main() { "
        + " ".join(f"int {name} = {value};" for name, value in sorted(ENV.items()))
        + f" print_int({expr.text}); }}"
    )
    machine = Machine(compile_source(source, optimize=True))
    result = machine.run(max_instructions=100_000)
    assert result.output[0] == expr.value


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=4, max_size=4
    ),
    ops=st.lists(st.sampled_from(["+", "-", "*"]), min_size=3, max_size=3),
)
def test_float_chains_match_oracle(values, ops):
    """Left-associated float chains agree with Python float arithmetic."""
    text = f"{values[0]!r}"
    oracle = values[0]
    for value, op in zip(values[1:], ops):
        literal = repr(abs(value))
        term = literal if value >= 0 else f"(0.0 - {literal})"
        text = f"({text} {op} {term})"
        if op == "+":
            oracle = oracle + (abs(value) if value >= 0 else -abs(value))
        elif op == "-":
            oracle = oracle - (abs(value) if value >= 0 else -abs(value))
        else:
            oracle = oracle * (abs(value) if value >= 0 else -abs(value))
    source = f"void main() {{ print_float({text}); }}"
    machine = Machine(compile_source(source))
    result = machine.run(max_instructions=100_000)
    assert result.output[0] == pytest.approx(oracle, rel=1e-12, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(expr=int_exprs())
def test_static_and_dynamic_frames_agree(expr):
    """Both frame disciplines compute the same value through a call."""
    source = (
        "int eval(int a, int b, int c) { return "
        + expr.text
        + "; } void main() { "
        + f"print_int(eval({ENV['a']}, {ENV['b']}, {ENV['c']})); }}"
    )
    outputs = []
    for static in (False, True):
        machine = Machine(compile_source(source, static_frames=static))
        result = machine.run(max_instructions=100_000)
        outputs.append(result.output[0])
    assert outputs[0] == outputs[1] == expr.value
