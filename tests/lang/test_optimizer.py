"""Optimizer passes: folding correctness and semantics preservation."""

import re

import pytest

from repro.cpu.machine import Machine
from repro.lang.compiler import compile_source, compile_to_assembly
from repro.workloads.suite import SUITE_NAMES, load_workload


def run(source, optimize, max_instructions=300_000):
    machine = Machine(compile_source(source, optimize=optimize))
    result = machine.run(max_instructions=max_instructions)
    return result


def both(source):
    plain = run(source, optimize=False)
    optimized = run(source, optimize=True)
    assert plain.reason == optimized.reason == "exit"
    return plain, optimized


class TestFolding:
    def test_constant_arithmetic_folds(self):
        asm = compile_to_assembly(
            "void main() { print_int(2 * 3 + 10 / 4 - (7 % 3)); }", optimize=True
        )
        assert "li t0, 7" in asm  # 6 + 2 - 1
        assert "mul" not in asm and "div" not in asm

    def test_c_division_semantics_in_folder(self):
        plain, optimized = both("void main() { print_int(0 - 7 / 2); }")
        assert plain.output == optimized.output == [-3]

    def test_float_folding(self):
        asm = compile_to_assembly(
            "void main() { print_float(1.5 * 2.0 + 0.25); }", optimize=True
        )
        assert re.search(r"lfi f\d+, 3.25", asm)
        assert "fmul" not in asm

    def test_comparison_folding(self):
        asm = compile_to_assembly("void main() { print_int(3 < 4); }", optimize=True)
        assert "slt" not in asm

    def test_cast_folding(self):
        asm = compile_to_assembly(
            "void main() { print_int(int(2.9)); print_float(float(3)); }",
            optimize=True,
        )
        assert "cvtfi" not in asm and "cvtif" not in asm

    def test_identity_elimination(self):
        asm = compile_to_assembly(
            "void main() { int x = 5; print_int(x * 1 + 0); }", optimize=True
        )
        assert "mul" not in asm
        # x + 0 collapsed: the print argument is x's home directly
        assert len(re.findall(r"add\b", asm)) == 0

    def test_multiply_by_zero_pure_operand(self):
        asm = compile_to_assembly(
            "void main() { int x = 5; print_int(x * 0); }", optimize=True
        )
        assert re.search(r"li t\d, 0\b", asm)

    def test_multiply_by_zero_call_preserved(self):
        source = """
        int g = 0;
        int bump() { g = g + 1; return g; }
        void main() { print_int(bump() * 0); print_int(g); }
        """
        plain, optimized = both(source)
        assert plain.output == optimized.output == [0, 1]  # bump still ran

    def test_dead_if_eliminated(self):
        asm = compile_to_assembly(
            "void main() { if (0) { print_int(1); } else { print_int(2); } }",
            optimize=True,
        )
        assert asm.count("syscall") == 2  # one print + exit
        assert "beqz" not in asm

    def test_while_zero_removed(self):
        asm = compile_to_assembly(
            "void main() { while (0) { print_int(1); } print_int(2); }",
            optimize=True,
        )
        assert "Lwhile" not in asm

    def test_pure_expression_statement_dropped(self):
        asm = compile_to_assembly(
            "void main() { int x = 1; x + 2; print_int(x); }", optimize=True
        )
        # only the initialization and the print remain
        assert asm.count("li t") <= 3


class TestStrengthReduction:
    def test_int_multiply_by_power_of_two(self):
        asm = compile_to_assembly(
            "void main() { int x = 5; print_int(x * 8); }", optimize=True
        )
        assert "sll" in asm
        assert "mul" not in asm

    def test_float_multiply_untouched(self):
        asm = compile_to_assembly(
            "void main() { float x = 5.0; print_float(x * 8.0); }", optimize=True
        )
        assert "fmul" in asm

    def test_non_power_of_two_untouched(self):
        asm = compile_to_assembly(
            "void main() { int x = 5; print_int(x * 6); }", optimize=True
        )
        assert "mul" in asm

    def test_values_preserved(self):
        plain, optimized = both(
            "void main() { int x = 0 - 13; print_int(x * 16); print_int(4 * x); }"
        )
        assert plain.output == optimized.output == [-208, -52]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_workload_outputs_identical(self, name):
        workload = load_workload(name)
        plain, _ = workload.run(max_instructions=260_000, trace=False)
        optimized, _ = workload.run(
            max_instructions=260_000, trace=False, optimize=True
        )
        # the optimized run gets further per instruction; compare the
        # common prefix of outputs
        common = min(len(plain.output), len(optimized.output))
        assert common > 0
        for got, want in zip(plain.output[:common], optimized.output[:common]):
            assert got == pytest.approx(want, rel=1e-12)

    def test_static_code_size_changes_sanely(self):
        # unrolling grows static code (bounded by the 4x factor); nothing
        # explodes and nothing vanishes
        for name in ("matrix300x", "cc1x", "naskerx"):
            workload = load_workload(name)
            plain = len(workload.program(optimize=False).instructions)
            optimized = len(workload.program(optimize=True).instructions)
            assert 0.5 * plain <= optimized <= 5 * plain, name
