"""MiniC parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.typesys import ArrayType


def parse_main(body):
    program = parse("void main() { " + body + " }")
    return program.functions[0].body.statements


def parse_expr(expr_text):
    statements = parse_main(f"{expr_text};")
    assert isinstance(statements[0], ast.ExprStmt)
    return statements[0].expr


class TestTopLevel:
    def test_global_scalar(self):
        program = parse("int x = 5; void main() {}")
        decl = program.globals[0]
        assert decl.name == "x"
        assert decl.scalar_init == 5

    def test_global_negative_init(self):
        assert parse("int x = -3; void main() {}").globals[0].scalar_init == -3

    def test_global_array_with_init(self):
        program = parse("float t[4] = {1.0, 2.0}; void main() {}")
        decl = program.globals[0]
        assert decl.var_type == ArrayType("float", (4,))
        assert decl.array_init == [1.0, 2.0]

    def test_global_2d_array(self):
        program = parse("int g[3][5]; void main() {}")
        assert program.globals[0].var_type.dims == (3, 5)

    def test_function_with_params(self):
        program = parse("int add(int a, float b) { return a; } void main() {}")
        func = program.functions[0]
        assert [(p.name, p.var_type) for p in func.params] == [
            ("a", "int"),
            ("b", "float"),
        ]
        assert func.return_type == "int"

    def test_too_many_dims_rejected(self):
        with pytest.raises(CompileError, match="2-D"):
            parse("void main() { int x; x = a[1][2][3]; }")

    def test_non_constant_dimension_rejected(self):
        with pytest.raises(CompileError, match="integer literals"):
            parse("int n = 3; int a[n]; void main() {}")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError, match="void"):
            parse("void x; void main() {}")


class TestStatements:
    def test_local_decl_with_init(self):
        statements = parse_main("int i = 3;")
        decl = statements[0]
        assert isinstance(decl, ast.LocalDecl)
        assert decl.init.value == 3

    def test_local_array(self):
        statements = parse_main("float buf[8];")
        assert statements[0].var_type == ArrayType("float", (8,))

    def test_local_array_init_rejected(self):
        with pytest.raises(CompileError, match="cannot be initialized"):
            parse_main("int a[2] = 5;")

    def test_assignment(self):
        statements = parse_main("x = 1;")
        assert isinstance(statements[0], ast.Assign)
        assert isinstance(statements[0].target, ast.VarRef)

    def test_element_assignment(self):
        statements = parse_main("a[i][j] = 0;")
        assert isinstance(statements[0].target, ast.Index)
        assert len(statements[0].target.indices) == 2

    def test_assignment_to_expression_rejected(self):
        with pytest.raises(CompileError, match="assignment target"):
            parse_main("(x + 1) = 2;")

    def test_if_else(self):
        statements = parse_main("if (x) y = 1; else { y = 2; }")
        node = statements[0]
        assert isinstance(node, ast.If)
        assert node.else_body is not None

    def test_dangling_else_binds_inner(self):
        statements = parse_main("if (a) if (b) x = 1; else x = 2;")
        outer = statements[0]
        assert outer.else_body is None
        inner = outer.then_body.statements[0]
        assert inner.else_body is not None

    def test_while(self):
        node = parse_main("while (i < 3) { i = i + 1; }")[0]
        assert isinstance(node, ast.While)

    def test_for_full_header(self):
        node = parse_main("for (i = 0; i < 9; i = i + 1) {}")[0]
        assert isinstance(node, ast.For)
        assert node.init is not None and node.cond is not None and node.step is not None

    def test_for_empty_header(self):
        node = parse_main("for (;;) { break; }")[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_for_with_declaration_init(self):
        node = parse_main("for (int i = 0; i < 3; i = i + 1) {}")[0]
        assert isinstance(node.init, ast.LocalDecl)

    def test_break_continue_return(self):
        statements = parse_main("while (1) { break; continue; } return;")
        loop = statements[0]
        assert isinstance(loop.body.statements[0], ast.Break)
        assert isinstance(loop.body.statements[1], ast.Continue)
        assert isinstance(statements[1], ast.Return)

    def test_empty_statement(self):
        assert parse_main(";")  # no crash

    def test_unterminated_block(self):
        with pytest.raises(CompileError, match="unterminated block"):
            parse("void main() { int x;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_compare_over_logic(self):
        expr = parse_expr("a < b && c > d")
        assert isinstance(expr, ast.LogicalOp)
        assert expr.left.op == "<"

    def test_or_lower_than_and(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_bitwise_precedence_chain(self):
        expr = parse_expr("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_shift_precedence(self):
        expr = parse_expr("a + b << 2")
        assert expr.op == "<<"

    def test_unary_minus_binds_tight(self):
        expr = parse_expr("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnOp)

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, x + 2)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_cast_expression(self):
        expr = parse_expr("float(3)")
        assert isinstance(expr, ast.Cast)
        assert expr.type == "float"

    def test_index_expression(self):
        expr = parse_expr("grid[i + 1][j]")
        assert isinstance(expr, ast.Index)
        assert expr.indices[0].op == "+"
