"""Loop unrolling pass."""

import re

import pytest

from repro.cpu.machine import Machine
from repro.lang.compiler import compile_source, compile_to_assembly


def run(source, optimize):
    machine = Machine(compile_source(source, optimize=optimize))
    result = machine.run(max_instructions=500_000)
    assert result.reason == "exit"
    return result.output


def branch_count(asm, body_marker):
    """Conditional branches in the emitted text (loop back-edges)."""
    return len(re.findall(r"\b(beqz|bnez|beq|bne|blez|bgtz)\b", asm))


class TestRewrite:
    SOURCE = """
    int out[64];
    void main() {
        int i;
        for (i = 0; i < 64; i = i + 1) { out[i] = i * 3; }
        print_int(out[63]);
    }
    """

    def test_semantics_preserved(self):
        assert run(self.SOURCE, False) == run(self.SOURCE, True) == [189]

    def test_back_edges_reduced(self):
        plain = compile_to_assembly(self.SOURCE, optimize=False)
        unrolled = compile_to_assembly(self.SOURCE, optimize=True)
        # four body copies per trip: the unrolled text is longer but the
        # loop executes a quarter of the iterations
        assert len(unrolled) > len(plain)

    def test_dynamic_branch_count_drops(self):
        from repro.trace.stats import compute_stats

        plain_machine = Machine(compile_source(self.SOURCE, optimize=False))
        plain_machine.run(max_instructions=500_000)
        unrolled_machine = Machine(compile_source(self.SOURCE, optimize=True))
        unrolled_machine.run(max_instructions=500_000)
        plain_branches = compute_stats(plain_machine.trace).conditional_branches
        unrolled_branches = compute_stats(unrolled_machine.trace).conditional_branches
        assert unrolled_branches < 0.5 * plain_branches

    def test_counter_recurrence_weakened(self):
        """The paper's stated effect: unrolling decreases the loop-counter
        recurrences, increasing the parallelism."""
        from repro.core.analyzer import analyze
        from repro.core.config import AnalysisConfig
        from repro.core.latency import LatencyTable

        unit = AnalysisConfig(latency=LatencyTable.unit())
        plain_machine = Machine(compile_source(self.SOURCE, optimize=False))
        plain_machine.run(max_instructions=500_000)
        unrolled_machine = Machine(compile_source(self.SOURCE, optimize=True))
        unrolled_machine.run(max_instructions=500_000)
        plain = analyze(plain_machine.trace, unit)
        unrolled = analyze(unrolled_machine.trace, unit)
        assert unrolled.critical_path_length < plain.critical_path_length


class TestGuards:
    @pytest.mark.parametrize(
        "loop,expected",
        [
            # non-literal bound: untouched
            ("int n = 7; for (i = 0; i < n; i = i + 1) { s = s + i; }", 21),
            # trip count not divisible by 2 or 4: untouched
            ("for (i = 0; i < 7; i = i + 1) { s = s + i; }", 21),
            # break in the body: untouched
            ("for (i = 0; i < 8; i = i + 1) { if (i == 5) { break; } s = s + i; }", 10),
            # body writes the induction variable: untouched
            ("for (i = 0; i < 8; i = i + 2) { s = s + i; i = i + 0; }", 12),
            # downward step shape (i = i + -?) is not canonical: untouched
            ("for (i = 8; i < 16; i = i + 3) { s = s + i; }", 8 + 11 + 14),
        ],
    )
    def test_non_qualifying_loops_preserved(self, loop, expected):
        source = f"void main() {{ int i; int s = 0; {loop} print_int(s); }}"
        assert run(source, True) == [expected]

    def test_qualifying_loop_with_declaration_init(self):
        source = """
        void main() {
            int s = 0;
            for (int i = 0; i < 16; i = i + 1) { s = s + i; }
            print_int(s);
        }
        """
        assert run(source, True) == [120]

    def test_nested_inner_unrolls_outer_preserved(self):
        source = """
        int grid[8][8];
        void main() {
            int i; int j; int s = 0;
            for (i = 0; i < 8; i = i + 1) {
                for (j = 0; j < 8; j = j + 1) { grid[i][j] = i * 8 + j; }
            }
            for (i = 0; i < 8; i = i + 1) { s = s + grid[i][i]; }
            print_int(s);
        }
        """
        assert run(source, False) == run(source, True)

    def test_local_declarations_in_body_stay_scoped(self):
        source = """
        void main() {
            int i; int s = 0;
            for (i = 0; i < 8; i = i + 1) {
                int t = i * 2;
                s = s + t;
            }
            print_int(s);
        }
        """
        assert run(source, True) == [56]

    def test_calls_in_body_run_correct_count(self):
        source = """
        int g = 0;
        void bump() { g = g + 1; }
        void main() {
            int i;
            for (i = 0; i < 12; i = i + 1) { bump(); }
            print_int(g);
        }
        """
        assert run(source, True) == [12]
