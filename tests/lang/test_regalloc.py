"""Temporary allocator mechanics."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.regalloc import TempAllocator


class Harness:
    def __init__(self, int_pool=("t0", "t1"), fp_pool=("f4",)):
        self.lines = []
        self.next_slot = 100
        self.freed = []
        self.alloc = TempAllocator(
            self.lines.append, self._alloc_slot, self.freed.append,
            int_pool=int_pool, fp_pool=fp_pool,
        )

    def _alloc_slot(self):
        slot = self.next_slot
        self.next_slot += 1
        return slot


class TestAcquireRelease:
    def test_fifo_rotation(self):
        h = Harness(int_pool=("t0", "t1", "t2"))
        a = h.alloc.acquire("int")
        assert a.reg == "t0"
        h.alloc.release(a)
        b = h.alloc.acquire("int")
        assert b.reg == "t1"  # rotated, not immediately reusing t0

    def test_pools_independent(self):
        h = Harness()
        assert h.alloc.acquire("int").reg.startswith("t")
        assert h.alloc.acquire("float").reg.startswith("f")

    def test_release_returns_slot(self):
        h = Harness()
        a = h.alloc.acquire("int")
        b = h.alloc.acquire("int")
        h.alloc.acquire("int")  # forces a spill of `a`
        assert a.slot == 100
        h.alloc.release(a)
        assert h.freed == [100]
        h.alloc.release(b)

    def test_borrowed_release_is_noop(self):
        h = Harness()
        borrowed = h.alloc.borrow("int", "s3")
        h.alloc.release(borrowed)
        assert not h.lines


class TestSpilling:
    def test_oldest_spilled_first(self):
        h = Harness()
        a = h.alloc.acquire("int")
        h.alloc.acquire("int")
        h.alloc.acquire("int")
        assert a.reg is None
        assert "sw t0, 100(sp)" in h.lines

    def test_keep_protects_victim(self):
        h = Harness()
        a = h.alloc.acquire("int")
        b = h.alloc.acquire("int")
        h.alloc.acquire("int", keep=(a,))
        assert a.reg is not None
        assert b.reg is None

    def test_ensure_reloads(self):
        h = Harness()
        a = h.alloc.acquire("int")
        h.alloc.acquire("int")
        h.alloc.acquire("int")  # spills a
        reg = h.alloc.ensure(a)
        assert reg is not None
        assert any(line.startswith("lw") for line in h.lines)

    def test_spill_live_writes_everything(self):
        h = Harness(int_pool=("t0", "t1", "t2"))
        temps = [h.alloc.acquire("int") for _ in range(3)]
        h.alloc.spill_live()
        assert all(t.reg is None for t in temps)

    def test_spill_live_respects_exclude(self):
        h = Harness(int_pool=("t0", "t1"))
        a = h.alloc.acquire("int")
        b = h.alloc.acquire("int")
        h.alloc.spill_live(exclude=(b,))
        assert a.reg is None
        assert b.reg is not None

    def test_exhaustion_with_all_protected_raises(self):
        h = Harness(int_pool=("t0",))
        a = h.alloc.acquire("int")
        with pytest.raises(CompileError, match="too complex"):
            h.alloc.acquire("int", keep=(a,))

    def test_fp_spills_use_fp_opcodes(self):
        h = Harness(fp_pool=("f4",))
        a = h.alloc.acquire("float")
        h.alloc.acquire("float")
        assert any(line.startswith("sf") for line in h.lines)
        h.alloc.ensure(a, keep=())
        # reloading the other temp would need lf; ensure `a` stays valid
        assert a.reg or a.slot is not None


class TestInvariants:
    def test_assert_drained_raises_on_leak(self):
        h = Harness()
        h.alloc.acquire("int")
        with pytest.raises(CompileError, match="leaked"):
            h.alloc.assert_drained("test")

    def test_assert_drained_passes_when_empty(self):
        h = Harness()
        a = h.alloc.acquire("int")
        h.alloc.release(a)
        h.alloc.assert_drained("test")
